//! Parallel frequency-sweep driver.
//!
//! Every frequency-domain analysis in this crate — µ upper-bound peaks
//! ([`crate::mu::mu_peak`]), H∞ norm estimates, D-scale fitting inside
//! D–K iteration — is a map over a frequency grid where each point is
//! independent: evaluate the transfer matrix, reduce it to a scalar or a
//! small record. This module provides that map once, with four
//! guarantees:
//!
//! 1. **One Hessenberg reduction per sweep.** The caller supplies a
//!    [`FreqSystem`] (built once, O(n³)); each grid point costs an O(n²)
//!    solve through a per-worker [`FreqEvaluator`] whose scratch buffers
//!    are reused across the whole chunk.
//! 2. **Deterministic results.** The grid is split into contiguous
//!    chunks, workers claim chunks round-robin, and chunk outputs are
//!    reassembled in grid order. Each point's computation is identical in
//!    serial and parallel mode, so [`sweep`] is *bit-identical* to
//!    [`sweep_serial`].
//! 3. **Cache-footprint chunking.** Chunk sizes come from the
//!    evaluator's working-set bytes against a 256 KiB L2 budget
//!    ([`FreqSystem::working_set_bytes`]) rather than `len / workers`:
//!    big systems get short chunks that keep their scratch hot, small
//!    systems get long chunks that amortize thread handoff.
//! 4. **Kernel-path control.** The `_with` variants take a
//!    [`SimdPolicy`] resolved *strictly* (so `ForceSimd` on unsupported
//!    hardware is a typed error); the policy-less variants use the
//!    process-wide `YUKTA_SIMD` policy leniently. Every worker of one
//!    sweep runs the same resolved [`SimdPath`].

use yukta_linalg::Result;
use yukta_linalg::freq::{FreqEvaluator, FreqSystem};
use yukta_linalg::simd;
pub use yukta_linalg::simd::{SimdPath, SimdPolicy};
use yukta_obs::Value;

/// Fewest grid points a worker must receive before thread fan-out pays
/// for itself; shorter sweeps run serially. Also the floor on
/// [`chunk_points`], so chunking never degenerates to per-point handoff.
const MIN_POINTS_PER_WORKER: usize = 8;

/// Per-sweep L2 working-set budget used to size grid chunks.
const L2_BUDGET_BYTES: usize = 256 * 1024;

/// Ceiling on [`chunk_points`] so tiny systems still split a long grid
/// into enough chunks to occupy every worker.
const MAX_CHUNK_POINTS: usize = 256;

/// Number of workers a sweep of `len` points should use on this host.
fn worker_count(len: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cores.min(len / MIN_POINTS_PER_WORKER).max(1)
}

/// Grid points per chunk for `sys`: how many evaluations fit the L2
/// budget given the evaluator's working set, clamped to
/// `[MIN_POINTS_PER_WORKER, MAX_CHUNK_POINTS]`.
///
/// The working set is what one evaluation streams over (scratch planes +
/// system tables + output); a chunk whose point count times its handoff
/// overhead stays small relative to that keeps each worker's scratch
/// resident for the whole chunk.
fn chunk_points(sys: &FreqSystem) -> usize {
    let ws = sys.working_set_bytes().max(1);
    (L2_BUDGET_BYTES / ws).clamp(MIN_POINTS_PER_WORKER, MAX_CHUNK_POINTS)
}

/// Maps `f` over every grid point in order, single-threaded, reusing one
/// evaluator on the process-global kernel path. `f` receives the point's
/// index in `grid`, its value, and the evaluator.
///
/// This is the reference semantics for [`sweep`]; the two are
/// bit-identical by construction.
pub fn sweep_serial<T, F>(sys: &FreqSystem, grid: &[f64], f: F) -> Vec<T>
where
    F: Fn(usize, f64, &mut FreqEvaluator<'_>) -> T,
{
    sweep_serial_for_path(sys, grid, simd::global_path(), f)
}

/// [`sweep_serial`] under an explicit [`SimdPolicy`], resolved strictly.
///
/// # Errors
///
/// Returns [`yukta_linalg::Error::SimdUnsupported`] for
/// [`SimdPolicy::ForceSimd`] on hardware without AVX2+FMA.
pub fn sweep_serial_with<T, F>(
    sys: &FreqSystem,
    grid: &[f64],
    policy: SimdPolicy,
    f: F,
) -> Result<Vec<T>>
where
    F: Fn(usize, f64, &mut FreqEvaluator<'_>) -> T,
{
    let path = simd::resolve(policy, simd::detected())?;
    Ok(sweep_serial_for_path(sys, grid, path, f))
}

fn sweep_serial_for_path<T, F>(sys: &FreqSystem, grid: &[f64], path: SimdPath, f: F) -> Vec<T>
where
    F: Fn(usize, f64, &mut FreqEvaluator<'_>) -> T,
{
    let mut ev = sys.evaluator_for_path(path);
    grid.iter()
        .enumerate()
        .map(|(k, &w)| f(k, w, &mut ev))
        .collect()
}

/// Chunk-granular variant of [`sweep_serial`]: `f` receives a whole
/// contiguous grid chunk (its start index, its frequencies, and the
/// evaluator) and returns one result per point. Chunk boundaries are the
/// same cache-sized partition the parallel driver uses, so batched
/// kernels (e.g. the Osborne D-scaling initializer) see identical batch
/// shapes in serial and parallel mode.
pub fn sweep_serial_chunks<T, F>(sys: &FreqSystem, grid: &[f64], f: F) -> Vec<T>
where
    F: Fn(usize, &[f64], &mut FreqEvaluator<'_>) -> Vec<T>,
{
    sweep_serial_chunks_for_path(sys, grid, simd::global_path(), f)
}

/// [`sweep_serial_chunks`] under an explicit [`SimdPolicy`], resolved
/// strictly.
///
/// # Errors
///
/// Returns [`yukta_linalg::Error::SimdUnsupported`] for
/// [`SimdPolicy::ForceSimd`] on hardware without AVX2+FMA.
pub fn sweep_serial_chunks_with<T, F>(
    sys: &FreqSystem,
    grid: &[f64],
    policy: SimdPolicy,
    f: F,
) -> Result<Vec<T>>
where
    F: Fn(usize, &[f64], &mut FreqEvaluator<'_>) -> Vec<T>,
{
    let path = simd::resolve(policy, simd::detected())?;
    Ok(sweep_serial_chunks_for_path(sys, grid, path, f))
}

fn sweep_serial_chunks_for_path<T, F>(
    sys: &FreqSystem,
    grid: &[f64],
    path: SimdPath,
    f: F,
) -> Vec<T>
where
    F: Fn(usize, &[f64], &mut FreqEvaluator<'_>) -> Vec<T>,
{
    let chunk = chunk_points(sys);
    let mut ev = sys.evaluator_for_path(path);
    let mut out = Vec::with_capacity(grid.len());
    let mut start = 0;
    while start < grid.len() {
        let end = (start + chunk).min(grid.len());
        let vals = f(start, &grid[start..end], &mut ev);
        debug_assert_eq!(vals.len(), end - start, "chunk closure must map 1:1");
        out.extend(vals);
        start = end;
    }
    out
}

/// Chunk-granular variant of [`sweep`]: like [`sweep_serial_chunks`] but
/// fanning chunks out across cores. Chunk partition, per-chunk inputs,
/// and reassembly order are identical to the serial variant, so results
/// are bit-identical to [`sweep_serial_chunks`].
pub fn sweep_chunks<T, F>(sys: &FreqSystem, grid: &[f64], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &[f64], &mut FreqEvaluator<'_>) -> Vec<T> + Sync,
{
    sweep_chunks_for_path(sys, grid, simd::global_path(), f)
}

/// [`sweep_chunks`] under an explicit [`SimdPolicy`], resolved strictly.
///
/// # Errors
///
/// Returns [`yukta_linalg::Error::SimdUnsupported`] for
/// [`SimdPolicy::ForceSimd`] on hardware without AVX2+FMA.
pub fn sweep_chunks_with<T, F>(
    sys: &FreqSystem,
    grid: &[f64],
    policy: SimdPolicy,
    f: F,
) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize, &[f64], &mut FreqEvaluator<'_>) -> Vec<T> + Sync,
{
    let path = simd::resolve(policy, simd::detected())?;
    Ok(sweep_chunks_for_path(sys, grid, path, f))
}

fn sweep_chunks_for_path<T, F>(sys: &FreqSystem, grid: &[f64], path: SimdPath, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &[f64], &mut FreqEvaluator<'_>) -> Vec<T> + Sync,
{
    let workers = worker_count(grid.len());
    let chunk = chunk_points(sys);
    let nchunks = grid.len().div_ceil(chunk);
    let workers = workers.min(nchunks);
    if workers <= 1 {
        return sweep_serial_chunks_for_path(sys, grid, path, f);
    }
    let rec = yukta_obs::handle();
    if rec.enabled() {
        rec.event(
            "sweep.fanout",
            &[
                ("points", Value::U64(grid.len() as u64)),
                ("workers", Value::U64(workers as u64)),
                ("chunk_points", Value::U64(chunk as u64)),
                ("path", Value::Str(path.label())),
            ],
        );
    }
    // Worker t claims chunks t, t + workers, t + 2·workers, … — a static
    // round-robin that needs no work queue and keeps assignment (hence
    // evaluator state per point) deterministic.
    let mut tagged: Vec<(usize, Vec<T>)> = crossbeam::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                scope.spawn(move |_| {
                    let mut ev = sys.evaluator_for_path(path);
                    let mut parts: Vec<(usize, Vec<T>)> = Vec::new();
                    let mut ci = t;
                    while ci * chunk < grid.len() {
                        let start = ci * chunk;
                        let end = (start + chunk).min(grid.len());
                        let token = rec.enabled().then(|| rec.span_begin("sweep.chunk"));
                        let vals = f(start, &grid[start..end], &mut ev);
                        debug_assert_eq!(vals.len(), end - start, "chunk closure must map 1:1");
                        if let Some(token) = token {
                            rec.span_end(
                                "sweep.chunk",
                                token,
                                &[
                                    ("chunk", Value::U64(ci as u64)),
                                    ("start", Value::U64(start as u64)),
                                    ("len", Value::U64((end - start) as u64)),
                                ],
                            );
                        }
                        parts.push((ci, vals));
                        ci += workers;
                    }
                    parts
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("sweep scope");
    tagged.sort_by_key(|&(ci, _)| ci);
    let mut out = Vec::with_capacity(grid.len());
    for (_, mut part) in tagged {
        out.append(&mut part);
    }
    out
}

/// Deterministic parallel map over `0..n`: `f(i)` runs once per index on
/// a round-robin worker assignment and results come back in index order,
/// bit-identical to `(0..n).map(f)`. This is the fan-out behind parallel
/// γ-bisection, where each index is one candidate γ probed through a full
/// H∞ synthesis — heavy, uniform, and independent.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let workers = cores.min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let mut tagged: Vec<(usize, T)> = crossbeam::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                scope.spawn(move |_| {
                    let mut out = Vec::new();
                    let mut i = t;
                    while i < n {
                        out.push((i, f(i)));
                        i += workers;
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    })
    .expect("parallel_map scope");
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, v)| v).collect()
}

/// Maps `f` over every grid point, fanning out across cache-sized
/// contiguous chunks on multi-core hosts. Results come back in grid order
/// and are bit-identical to [`sweep_serial`] with the same arguments.
pub fn sweep<T, F>(sys: &FreqSystem, grid: &[f64], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, f64, &mut FreqEvaluator<'_>) -> T + Sync,
{
    sweep_for_path(sys, grid, simd::global_path(), f)
}

/// [`sweep`] under an explicit [`SimdPolicy`], resolved strictly.
///
/// # Errors
///
/// Returns [`yukta_linalg::Error::SimdUnsupported`] for
/// [`SimdPolicy::ForceSimd`] on hardware without AVX2+FMA.
pub fn sweep_with<T, F>(sys: &FreqSystem, grid: &[f64], policy: SimdPolicy, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize, f64, &mut FreqEvaluator<'_>) -> T + Sync,
{
    let path = simd::resolve(policy, simd::detected())?;
    Ok(sweep_for_path(sys, grid, path, f))
}

fn sweep_for_path<T, F>(sys: &FreqSystem, grid: &[f64], path: SimdPath, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, f64, &mut FreqEvaluator<'_>) -> T + Sync,
{
    if worker_count(grid.len()) <= 1 {
        return sweep_serial_for_path(sys, grid, path, f);
    }
    // Per-point sweeps are the chunked driver with a 1:1 adapter.
    sweep_chunks_for_path(sys, grid, path, |start, ws, ev| {
        ws.iter()
            .enumerate()
            .map(|(k, &w)| f(start + k, w, ev))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use yukta_linalg::{C64, Error, Mat};

    fn sys() -> FreqSystem {
        let a = Mat::from_rows(&[&[-0.5, 0.2, 0.0], &[0.1, -1.0, 0.3], &[0.0, 0.4, -2.0]]);
        let b = Mat::col(&[1.0, 0.5, -0.2]);
        let c = Mat::from_rows(&[&[1.0, 0.0, 0.5]]);
        let d = Mat::zeros(1, 1);
        FreqSystem::new(&a, &b, &c, &d).unwrap()
    }

    fn gain(_: usize, w: f64, ev: &mut FreqEvaluator<'_>) -> f64 {
        ev.eval(C64::new(0.0, w)).unwrap().get(0, 0).abs()
    }

    #[test]
    fn parallel_bit_identical_to_serial() {
        let s = sys();
        let grid: Vec<f64> = (0..200).map(|k| 0.01 * 1.05f64.powi(k)).collect();
        let serial = sweep_serial(&s, &grid, gain);
        let parallel = sweep(&s, &grid, gain);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn parallel_bit_identical_to_serial_under_each_policy() {
        let s = sys();
        let grid: Vec<f64> = (0..300).map(|k| 0.01 * 1.04f64.powi(k)).collect();
        for policy in [
            SimdPolicy::Auto,
            SimdPolicy::ForceScalar,
            SimdPolicy::ForceSimd,
        ] {
            let serial = match sweep_serial_with(&s, &grid, policy, gain) {
                Ok(v) => v,
                // ForceSimd on a host without AVX2+FMA: the parallel
                // variant must fail identically.
                Err(Error::SimdUnsupported { .. }) => {
                    assert!(matches!(
                        sweep_with(&s, &grid, policy, gain),
                        Err(Error::SimdUnsupported { .. })
                    ));
                    continue;
                }
                Err(e) => panic!("unexpected error: {e}"),
            };
            let parallel = sweep_with(&s, &grid, policy, gain).unwrap();
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn scalar_and_simd_policies_agree() {
        let s = sys();
        let grid: Vec<f64> = (0..120).map(|k| 0.01 * 1.07f64.powi(k)).collect();
        let scalar = sweep_serial_with(&s, &grid, SimdPolicy::ForceScalar, gain).unwrap();
        let Ok(simd) = sweep_serial_with(&s, &grid, SimdPolicy::ForceSimd, gain) else {
            return; // host without AVX2+FMA: nothing to compare
        };
        for (a, b) in scalar.iter().zip(&simd) {
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0));
        }
    }

    #[test]
    fn indices_arrive_in_grid_order() {
        let s = sys();
        let grid: Vec<f64> = (1..=100).map(|k| k as f64).collect();
        let idx = sweep(&s, &grid, |k, _, _| k);
        assert_eq!(idx, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn indices_arrive_in_grid_order_across_many_chunks() {
        // A grid much longer than one chunk exercises the round-robin
        // reassembly even when chunk_points clamps low.
        let s = sys();
        let grid: Vec<f64> = (1..=1000).map(|k| k as f64 * 0.01).collect();
        let idx = sweep(&s, &grid, |k, _, _| k);
        assert_eq!(idx, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn empty_grid() {
        let s = sys();
        let out = sweep(&s, &[], |k, _, _| k);
        assert!(out.is_empty());
    }

    fn gain_chunk(start: usize, ws: &[f64], ev: &mut FreqEvaluator<'_>) -> Vec<f64> {
        ws.iter()
            .enumerate()
            .map(|(k, &w)| gain(start + k, w, ev))
            .collect()
    }

    #[test]
    fn chunked_parallel_bit_identical_to_chunked_serial() {
        let s = sys();
        let grid: Vec<f64> = (0..300).map(|k| 0.01 * 1.04f64.powi(k)).collect();
        let serial = sweep_serial_chunks(&s, &grid, gain_chunk);
        let parallel = sweep_chunks(&s, &grid, gain_chunk);
        assert_eq!(serial.len(), grid.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn chunked_matches_per_point_sweep() {
        let s = sys();
        let grid: Vec<f64> = (0..150).map(|k| 0.02 * 1.05f64.powi(k)).collect();
        let per_point = sweep_serial(&s, &grid, gain);
        let chunked = sweep_serial_chunks(&s, &grid, gain_chunk);
        for (a, b) in per_point.iter().zip(&chunked) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn chunked_with_policy_propagates_simd_errors() {
        let s = sys();
        let grid: Vec<f64> = (0..40).map(|k| 0.1 * k as f64 + 0.1).collect();
        let scalar = sweep_serial_chunks_with(&s, &grid, SimdPolicy::ForceScalar, gain_chunk)
            .expect("scalar path always available");
        assert_eq!(scalar.len(), grid.len());
        match sweep_chunks_with(&s, &grid, SimdPolicy::ForceSimd, gain_chunk) {
            Ok(simd) => {
                for (a, b) in scalar.iter().zip(&simd) {
                    assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0));
                }
            }
            Err(Error::SimdUnsupported { .. }) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn parallel_map_is_index_ordered_and_complete() {
        let vals = parallel_map(37, |i| 3 * i + 1);
        assert_eq!(vals, (0..37).map(|i| 3 * i + 1).collect::<Vec<_>>());
        let empty = parallel_map(0, |i| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn chunk_points_is_clamped() {
        let c = chunk_points(&sys());
        assert!((MIN_POINTS_PER_WORKER..=MAX_CHUNK_POINTS).contains(&c));
        // A large system must get a chunk at the floor, not zero.
        let n = 64;
        let big = FreqSystem::new(
            &Mat::diag(&vec![-1.0; n]),
            &Mat::zeros(n, 8),
            &Mat::zeros(8, n),
            &Mat::zeros(8, 8),
        )
        .unwrap();
        assert!(big.working_set_bytes() > L2_BUDGET_BYTES / MIN_POINTS_PER_WORKER);
        assert_eq!(chunk_points(&big), MIN_POINTS_PER_WORKER);
    }
}
