//! Parallel frequency-sweep driver.
//!
//! Every frequency-domain analysis in this crate — µ upper-bound peaks
//! ([`crate::mu::mu_peak`]), H∞ norm estimates, D-scale fitting inside
//! D–K iteration — is a map over a frequency grid where each point is
//! independent: evaluate the transfer matrix, reduce it to a scalar or a
//! small record. This module provides that map once, with three
//! guarantees:
//!
//! 1. **One Hessenberg reduction per sweep.** The caller supplies a
//!    [`FreqSystem`] (built once, O(n³)); each grid point costs an O(n²)
//!    solve through a per-worker [`FreqEvaluator`] whose scratch buffers
//!    are reused across the whole chunk.
//! 2. **Deterministic results.** The grid is split into contiguous
//!    chunks, one worker per chunk, and chunk outputs are concatenated in
//!    grid order. Each point's computation is identical in serial and
//!    parallel mode, so [`sweep`] is *bit-identical* to [`sweep_serial`].
//! 3. **Graceful degradation.** Short grids and single-core hosts skip
//!    the fan-out entirely and run the serial path.

use yukta_linalg::freq::{FreqEvaluator, FreqSystem};

/// Fewest grid points a worker must receive before thread fan-out pays
/// for itself; shorter sweeps run serially.
const MIN_POINTS_PER_WORKER: usize = 8;

/// Number of workers a sweep of `len` points should use on this host.
fn worker_count(len: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cores.min(len / MIN_POINTS_PER_WORKER).max(1)
}

/// Maps `f` over every grid point in order, single-threaded, reusing one
/// evaluator. `f` receives the point's index in `grid`, its value, and
/// the evaluator.
///
/// This is the reference semantics for [`sweep`]; the two are
/// bit-identical by construction.
pub fn sweep_serial<T, F>(sys: &FreqSystem, grid: &[f64], f: F) -> Vec<T>
where
    F: Fn(usize, f64, &mut FreqEvaluator<'_>) -> T,
{
    let mut ev = sys.evaluator();
    grid.iter()
        .enumerate()
        .map(|(k, &w)| f(k, w, &mut ev))
        .collect()
}

/// Maps `f` over every grid point, fanning out across contiguous chunks
/// on multi-core hosts. Results come back in grid order and are
/// bit-identical to [`sweep_serial`] with the same arguments.
pub fn sweep<T, F>(sys: &FreqSystem, grid: &[f64], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, f64, &mut FreqEvaluator<'_>) -> T + Sync,
{
    let workers = worker_count(grid.len());
    if workers <= 1 {
        return sweep_serial(sys, grid, f);
    }
    let chunk = grid.len().div_ceil(workers);
    let per_chunk: Vec<Vec<T>> = crossbeam::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = grid
            .chunks(chunk)
            .enumerate()
            .map(|(ci, points)| {
                scope.spawn(move |_| {
                    let mut ev = sys.evaluator();
                    points
                        .iter()
                        .enumerate()
                        .map(|(k, &w)| f(ci * chunk + k, w, &mut ev))
                        .collect::<Vec<T>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("sweep scope");
    let mut out = Vec::with_capacity(grid.len());
    for mut part in per_chunk {
        out.append(&mut part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use yukta_linalg::{C64, Mat};

    fn sys() -> FreqSystem {
        let a = Mat::from_rows(&[&[-0.5, 0.2, 0.0], &[0.1, -1.0, 0.3], &[0.0, 0.4, -2.0]]);
        let b = Mat::col(&[1.0, 0.5, -0.2]);
        let c = Mat::from_rows(&[&[1.0, 0.0, 0.5]]);
        let d = Mat::zeros(1, 1);
        FreqSystem::new(&a, &b, &c, &d).unwrap()
    }

    #[test]
    fn parallel_bit_identical_to_serial() {
        let s = sys();
        let grid: Vec<f64> = (0..200).map(|k| 0.01 * 1.05f64.powi(k)).collect();
        let gain = |_: usize, w: f64, ev: &mut FreqEvaluator<'_>| {
            ev.eval(C64::new(0.0, w)).unwrap().get(0, 0).abs()
        };
        let serial = sweep_serial(&s, &grid, gain);
        let parallel = sweep(&s, &grid, gain);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn indices_arrive_in_grid_order() {
        let s = sys();
        let grid: Vec<f64> = (1..=100).map(|k| k as f64).collect();
        let idx = sweep(&s, &grid, |k, _, _| k);
        assert_eq!(idx, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_grid() {
        let s = sys();
        let out = sweep(&s, &[], |k, _, _| k);
        assert!(out.is_empty());
    }
}
