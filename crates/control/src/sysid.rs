//! Black-box system identification.
//!
//! Yukta models the board from excitation data alone (Section IV-C of the
//! paper uses Box–Jenkins in MATLAB). We implement:
//!
//! * [`fit_arx`] — MIMO ARX least squares: `y(t) = Σ Aₖ y(t−k) + Σ Bₖ u(t−k)`.
//! * [`fit_armax`] — ARMAX refinement by pseudo-linear regression, which
//!   whitens correlated residuals by adding lagged-residual regressors.
//!
//! Both return an [`IdModel`]: a strictly proper state-space realization
//! plus per-output fit scores. Controllers are synthesized against this
//! model; the uncertainty guardband absorbs whatever the polynomial family
//! cannot capture (that is the paper's central robustness argument).

use yukta_linalg::qr::Qr;
use yukta_linalg::{Error, Mat, Result};

use crate::ss::StateSpace;

/// Configuration for ARX/ARMAX identification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SysIdConfig {
    /// Autoregressive order (lags of y).
    pub na: usize,
    /// Exogenous order (lags of u).
    pub nb: usize,
    /// Moving-average order for ARMAX (lags of the residual); 0 disables.
    pub nc: usize,
    /// Pseudo-linear-regression passes for ARMAX.
    pub plr_iters: usize,
    /// Ridge (Tikhonov) regularization strength; 0 disables. A small
    /// positive value (e.g. `1e-4`) keeps the regression well posed when
    /// some measured output is exactly collinear with the inputs, at the
    /// cost of a negligible coefficient bias.
    pub ridge: f64,
}

impl Default for SysIdConfig {
    fn default() -> Self {
        // Second order captures the thermal + power dynamics of the board
        // at the 500 ms controller period; see DESIGN.md for why we deviate
        // from the paper's 4th-order Box–Jenkins model.
        SysIdConfig {
            na: 2,
            nb: 2,
            nc: 2,
            plr_iters: 3,
            ridge: 0.0,
        }
    }
}

/// An identified model: realization plus quality metadata.
#[derive(Debug, Clone)]
pub struct IdModel {
    /// Strictly proper discrete state-space realization, inputs = the
    /// excitation inputs, outputs = the measured outputs.
    pub sys: StateSpace,
    /// Per-output fit, `1 − ‖y−ŷ‖/‖y−ȳ‖` (1 = perfect, ≤0 = useless),
    /// computed on the training data with one-step-ahead prediction.
    pub fit: Vec<f64>,
    /// The raw coefficient matrix `Θ = [A₁ … A_na B₁ … B_nb]`.
    pub theta: Mat,
    /// Orders used.
    pub config: SysIdConfig,
}

/// Fits a MIMO ARX model by least squares.
///
/// `u` has one row per sample (width = number of inputs), `y` likewise
/// (width = number of outputs). Rows are synchronized samples at the
/// controller period.
///
/// # Errors
///
/// * [`Error::DimensionMismatch`] if `u`/`y` lengths differ or there is too
///   little data for the requested orders.
/// * [`Error::Singular`] if the excitation is insufficient (rank-deficient
///   regressor).
///
/// # Examples
///
/// ```
/// use yukta_control::sysid::{fit_arx, SysIdConfig};
///
/// # fn main() -> Result<(), yukta_linalg::Error> {
/// // Identify y(t) = 0.5 y(t−1) + 0.3 u(t−1) from simulated data.
/// let mut u = Vec::new();
/// let mut y = vec![vec![0.0]];
/// let mut state: f64 = 0.0;
/// for t in 0..200 {
///     let ut = ((t * 37 % 11) as f64 - 5.0) / 5.0;
///     u.push(vec![ut]);
///     state = 0.5 * state + 0.3 * ut;
///     y.push(vec![state]);
/// }
/// y.pop();
/// let model = fit_arx(&u, &y, SysIdConfig { na: 1, nb: 1, nc: 0, plr_iters: 0, ridge: 0.0 })?;
/// assert!(model.fit[0] > 0.99);
/// # Ok(())
/// # }
/// ```
pub fn fit_arx(u: &[Vec<f64>], y: &[Vec<f64>], config: SysIdConfig) -> Result<IdModel> {
    let (phi, targets, ny, nu) = build_regression(u, y, config.na, config.nb, None, 0)?;
    let (phi_solve, targets_solve) = if config.ridge > 0.0 {
        // Tikhonov: append sqrt(λ)·I rows so the normal equations become
        // ΦᵀΦ + λI — always full rank.
        let k = phi.cols();
        let reg = Mat::identity(k).scale(config.ridge.sqrt());
        (
            Mat::vstack(&phi, &reg)?,
            Mat::vstack(&targets, &Mat::zeros(k, targets.cols()))?,
        )
    } else {
        (phi.clone(), targets.clone())
    };
    let theta_t = Qr::new(&phi_solve)
        .solve_least_squares(&targets_solve)
        .map_err(|_| Error::Singular { op: "fit_arx" })?;
    let theta = theta_t.t();
    let fit = fit_scores(&phi, &theta_t, &targets);
    let sys = realize_arx(&theta, ny, nu, config.na, config.nb)?;
    Ok(IdModel {
        sys,
        fit,
        theta,
        config,
    })
}

/// Fits a MIMO ARMAX model by pseudo-linear regression: alternately fit an
/// extended ARX that includes lagged residuals, recompute residuals, and
/// repeat. The returned realization keeps only the deterministic `(A, B)`
/// part — the noise polynomial only serves to de-bias the estimates.
///
/// # Errors
///
/// Same failure modes as [`fit_arx`].
pub fn fit_armax(u: &[Vec<f64>], y: &[Vec<f64>], config: SysIdConfig) -> Result<IdModel> {
    if config.nc == 0 || config.plr_iters == 0 {
        return fit_arx(u, y, config);
    }
    // Initial residuals from a plain ARX fit.
    let base = fit_arx(u, y, config)?;
    let mut resid = one_step_residuals(u, y, &base.theta, config.na, config.nb)?;
    let mut best = base;
    for _ in 0..config.plr_iters {
        let (phi, targets, ny, nu) =
            build_regression(u, y, config.na, config.nb, Some(&resid), config.nc)?;
        let theta_t = match Qr::new(&phi).solve_least_squares(&targets) {
            Ok(t) => t,
            Err(_) => break, // extended regressor became degenerate; keep best
        };
        let theta_full = theta_t.t();
        // Deterministic part: first na·ny + nb·nu columns.
        let det_cols = config.na * ny + config.nb * nu;
        let theta_det = theta_full.block(0, ny, 0, det_cols);
        let fit = fit_scores(&phi, &theta_t, &targets);
        let sys = realize_arx(&theta_det, ny, nu, config.na, config.nb)?;
        let improved = fit.iter().sum::<f64>() > best.fit.iter().sum::<f64>();
        resid = one_step_residuals(u, y, &theta_det, config.na, config.nb)?;
        if improved {
            best = IdModel {
                sys,
                fit,
                theta: theta_det,
                config,
            };
        }
    }
    Ok(best)
}

/// Builds the ARX regression: one row per usable sample, columns
/// `[y(t−1) … y(t−na), u(t−1) … u(t−nb), (resid lags…)]`.
fn build_regression(
    u: &[Vec<f64>],
    y: &[Vec<f64>],
    na: usize,
    nb: usize,
    resid: Option<&[Vec<f64>]>,
    nc: usize,
) -> Result<(Mat, Mat, usize, usize)> {
    if u.len() != y.len() || u.is_empty() {
        return Err(Error::DimensionMismatch {
            op: "sysid_data",
            lhs: (u.len(), 0),
            rhs: (y.len(), 0),
        });
    }
    let t_total = y.len();
    let ny = y[0].len();
    let nu = u[0].len();
    let lag = na.max(nb).max(nc);
    if t_total <= lag + (na * ny + nb * nu + nc * ny) {
        return Err(Error::DimensionMismatch {
            op: "sysid_data_too_short",
            lhs: (t_total, 0),
            rhs: (lag, na * ny + nb * nu),
        });
    }
    let n_rows = t_total - lag;
    let n_cols = na * ny + nb * nu + nc * ny;
    let mut phi = Mat::zeros(n_rows, n_cols);
    let mut targets = Mat::zeros(n_rows, ny);
    for (row, t) in (lag..t_total).enumerate() {
        let mut col = 0;
        for k in 1..=na {
            for &yj in y[t - k].iter().take(ny) {
                phi[(row, col)] = yj;
                col += 1;
            }
        }
        for k in 1..=nb {
            for &uj in u[t - k].iter().take(nu) {
                phi[(row, col)] = uj;
                col += 1;
            }
        }
        if let Some(r) = resid {
            for k in 1..=nc {
                for &rj in r[t - k].iter().take(ny) {
                    phi[(row, col)] = rj;
                    col += 1;
                }
            }
        }
        for j in 0..ny {
            targets[(row, j)] = y[t][j];
        }
    }
    Ok((phi, targets, ny, nu))
}

/// One-step-ahead residuals `y(t) − Θ·φ(t)` padded with zeros at the start.
fn one_step_residuals(
    u: &[Vec<f64>],
    y: &[Vec<f64>],
    theta: &Mat,
    na: usize,
    nb: usize,
) -> Result<Vec<Vec<f64>>> {
    let (phi, targets, ny, _) = build_regression(u, y, na, nb, None, 0)?;
    let lag = na.max(nb);
    let pred = &phi * &theta.t();
    let mut out = vec![vec![0.0; ny]; y.len()];
    for row in 0..phi.rows() {
        for j in 0..ny {
            out[lag + row][j] = targets[(row, j)] - pred[(row, j)];
        }
    }
    Ok(out)
}

/// Per-output fit score `1 − ‖e‖/‖y − ȳ‖`.
fn fit_scores(phi: &Mat, theta_t: &Mat, targets: &Mat) -> Vec<f64> {
    let pred = phi * theta_t;
    let ny = targets.cols();
    let n = targets.rows();
    let mut out = Vec::with_capacity(ny);
    for j in 0..ny {
        let mean: f64 = (0..n).map(|i| targets[(i, j)]).sum::<f64>() / n as f64;
        let mut err = 0.0;
        let mut var = 0.0;
        for i in 0..n {
            err += (targets[(i, j)] - pred[(i, j)]).powi(2);
            var += (targets[(i, j)] - mean).powi(2);
        }
        out.push(if var > 1e-300 {
            1.0 - (err / var).sqrt()
        } else {
            0.0
        });
    }
    out
}

/// Converts ARX coefficients to a strictly proper state-space realization
/// with state `x(t) = [y(t−1) … y(t−na), u(t−1) … u(t−nb)]`.
fn realize_arx(theta: &Mat, ny: usize, nu: usize, na: usize, nb: usize) -> Result<StateSpace> {
    let ns = na * ny + nb * nu;
    let mut a = Mat::zeros(ns, ns);
    let mut b = Mat::zeros(ns, nu);
    // C row: y(t) = Θ x(t).
    let c = theta.clone();
    // y-block 1 at next step holds y(t) = Θ x(t).
    a.set_block(0, 0, theta);
    // y-block k (k ≥ 2) shifts from block k−1.
    for k in 1..na {
        for j in 0..ny {
            a[(k * ny + j, (k - 1) * ny + j)] = 1.0;
        }
    }
    // u-block 1 receives u(t) via B.
    let u_base = na * ny;
    for j in 0..nu {
        b[(u_base + j, j)] = 1.0;
    }
    // u-block k (k ≥ 2) shifts.
    for k in 1..nb {
        for j in 0..nu {
            a[(u_base + k * nu + j, u_base + (k - 1) * nu + j)] = 1.0;
        }
    }
    StateSpace::new(a, b, c, Mat::zeros(ny, nu), Some(1.0))
}

impl IdModel {
    /// Re-tags the realization with the actual sample period (identification
    /// works in sample counts; callers supply physical time).
    ///
    /// # Errors
    ///
    /// Never fails for models produced by this module; the `Result` guards
    /// the internal reconstruction.
    pub fn with_sample_period(&self, ts: f64) -> Result<IdModel> {
        let sys = StateSpace::new(
            self.sys.a().clone(),
            self.sys.b().clone(),
            self.sys.c().clone(),
            self.sys.d().clone(),
            Some(ts),
        )?;
        Ok(IdModel {
            sys,
            fit: self.fit.clone(),
            theta: self.theta.clone(),
            config: self.config,
        })
    }

    /// Returns a copy whose `A` matrix is radially contracted so the model
    /// is Schur-stable (spectral radius ≤ `rho_max`). Identified models of
    /// a stable physical plant occasionally come out marginally unstable;
    /// synthesis requires stability and the guardband covers the edit.
    ///
    /// # Errors
    ///
    /// Propagates eigenvalue failures.
    pub fn stabilized(&self, rho_max: f64) -> Result<IdModel> {
        let rho = yukta_linalg::eig::spectral_radius(self.sys.a())?;
        if rho <= rho_max {
            return Ok(self.clone());
        }
        let sys = StateSpace::new(
            self.sys.a().scale(rho_max / rho),
            self.sys.b().clone(),
            self.sys.c().clone(),
            self.sys.d().clone(),
            self.sys.ts(),
        )?;
        Ok(IdModel {
            sys,
            fit: self.fit.clone(),
            theta: self.theta.clone(),
            config: self.config,
        })
    }
}

/// Corrects a model's `B` matrix so its DC-gain matrix *exactly* matches
/// independently measured step-test gains, changing `B` as little as
/// possible (least-norm update).
///
/// Broadband regression over a nonlinear plant systematically misestimates
/// per-input sensitivities and cross-gains (omitted-nonlinearity bias); a
/// handful of single-input step experiments around the operating point
/// recovers the local DC map `G`. Since the DC gain is linear in `B`
/// (`G = C(I−A)⁻¹B` for strictly proper discrete models), the exact match
/// is the least-norm solution of `M·ΔB = G_target − M·B` with
/// `M = C(I−A)⁻¹`. The identified dynamics (poles) are untouched.
///
/// `measured_dc` has one row per output and one column per input, in the
/// model's own normalized units.
///
/// # Errors
///
/// * [`Error::DimensionMismatch`] if `measured_dc` has the wrong shape.
/// * [`Error::Singular`] if the model has a pole at `z = 1` or a
///   degenerate output map.
pub fn calibrate_dc_gains(sys: &StateSpace, measured_dc: &Mat) -> Result<StateSpace> {
    if measured_dc.shape() != (sys.n_outputs(), sys.n_inputs()) {
        return Err(Error::DimensionMismatch {
            op: "calibrate_dc_gains",
            lhs: (sys.n_outputs(), sys.n_inputs()),
            rhs: measured_dc.shape(),
        });
    }
    let n = sys.order();
    // M = C (I − A)⁻¹.
    let ima = &Mat::identity(n) - sys.a();
    let ima_inv = ima.inverse().map_err(|_| Error::Singular {
        op: "calibrate_dc_gains",
    })?;
    let m = sys.c() * &ima_inv;
    let resid = measured_dc - &(&m * sys.b());
    // Least-norm ΔB = Mᵀ (M Mᵀ)⁻¹ resid.
    let mmt = &m * &m.t();
    let mmt_inv = mmt.inverse().map_err(|_| Error::Singular {
        op: "calibrate_dc_gains",
    })?;
    let delta_b = &m.t() * &(&mmt_inv * &resid);
    let b = sys.b() + &delta_b;
    StateSpace::new(
        sys.a().clone(),
        b,
        sys.c().clone(),
        sys.d().clone(),
        sys.ts(),
    )
}

/// Worst-case one-step-ahead relative prediction residual of `model` on
/// held-out data: `max_j ‖y_j − ŷ_j‖ / ‖y_j − ȳ_j‖` over outputs `j`.
///
/// This is the quantity the guardband auto-tuner compares against the
/// uncertainty radius: if the model predicts a validation record to within
/// 10% relative RMS, a ±40% multiplicative guardband is needlessly
/// conservative.
///
/// # Errors
///
/// Same data-shape failures as [`fit_arx`] (mismatched lengths, too few
/// samples for the model's orders).
pub fn validation_residual(u: &[Vec<f64>], y: &[Vec<f64>], model: &IdModel) -> Result<f64> {
    let (phi, targets, ny, _) = build_regression(u, y, model.config.na, model.config.nb, None, 0)?;
    let pred = &phi * &model.theta.t();
    let n = targets.rows();
    let mut worst = 0.0f64;
    for j in 0..ny {
        let mean: f64 = (0..n).map(|i| targets[(i, j)]).sum::<f64>() / n as f64;
        let mut err = 0.0;
        let mut var = 0.0;
        for i in 0..n {
            err += (targets[(i, j)] - pred[(i, j)]).powi(2);
            var += (targets[(i, j)] - mean).powi(2);
        }
        // A flat-line output carries no information about model quality;
        // treat it as perfectly predicted rather than dividing by zero.
        if var > 1e-300 {
            worst = worst.max((err / var).sqrt());
        }
    }
    Ok(worst)
}

/// Identification excitation schedules: PRBS and multisine signals that are
/// deterministic under a fixed seed, decorrelated across actuator channels,
/// and shaped onto quantized actuator grids.
///
/// The paper's MATLAB flow excites every knob with independent random
/// walks; a random walk concentrates its power at DC and under-excites the
/// mid-band where the µ peak of the eventual design lives. The schedules
/// here put flat (PRBS) or exactly-placed (multisine) power across the
/// band up to the Nyquist rate of the controller period.
pub mod excitation {
    use crate::quant::InputGrid;

    /// SplitMix64 step — the stream-salting and seeding primitive. Every
    /// channel derives its own independent stream from
    /// `(experiment seed, channel index)`, so adding or reordering
    /// channels never perturbs the others' sequences.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The per-channel stream seed: `splitmix64` of the experiment seed
    /// XOR a channel salt. Channel 0 with salt 0 is NOT the raw seed, so
    /// no channel ever aliases the caller's own use of the seed.
    pub fn channel_seed(seed: u64, channel: usize) -> u64 {
        let mut s = seed ^ (channel as u64).wrapping_mul(0xA076_1D64_78BD_642F);
        splitmix64(&mut s)
    }

    /// Maximum-length PRBS in `{−1, +1}` from a 31-bit LFSR (taps 31, 28),
    /// one chip held for `hold` samples. The hold time moves the sequence's
    /// power band: the first spectral null sits at `ω = 2π/(hold·ts)`, so
    /// longer holds concentrate power at lower frequencies.
    pub fn prbs_sequence(seed: u64, channel: usize, n: usize, hold: usize) -> Vec<f64> {
        let hold = hold.max(1);
        // Non-zero 31-bit LFSR state from the salted stream.
        let mut s = channel_seed(seed, channel);
        let mut lfsr = (splitmix64(&mut s) as u32) & 0x7FFF_FFFF;
        if lfsr == 0 {
            lfsr = 1;
        }
        let mut out = Vec::with_capacity(n);
        let mut chip = 0.0;
        for t in 0..n {
            if t % hold == 0 {
                let bit = ((lfsr >> 30) ^ (lfsr >> 27)) & 1;
                lfsr = ((lfsr << 1) | bit) & 0x7FFF_FFFF;
                chip = if bit == 1 { 1.0 } else { -1.0 };
            }
            out.push(chip);
        }
        out
    }

    /// Schroeder-phased multisine in `[−1, 1]`: `n_tones` sinusoids on an
    /// interleaved frequency comb (channel `c` of `n_channels` owns bins
    /// `c, c + n_channels, c + 2·n_channels, …` of a length-`n` record),
    /// so simultaneous channels are exactly orthogonal over the record.
    /// Schroeder phases `φ_i = −π·i·(i−1)/n_tones` keep the crest factor
    /// low; the result is peak-normalized to 1.
    pub fn multisine_sequence(
        seed: u64,
        channel: usize,
        n_channels: usize,
        n: usize,
        n_tones: usize,
    ) -> Vec<f64> {
        let n_channels = n_channels.max(1);
        let n_tones = n_tones.max(1);
        if n == 0 {
            return Vec::new();
        }
        // A random phase offset per channel (deterministic in the seed)
        // decorrelates records with the same bin comb across experiments.
        let mut s = channel_seed(seed, channel);
        let phase0 =
            (splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64 * std::f64::consts::TAU;
        let mut out = vec![0.0f64; n];
        for i in 0..n_tones {
            // Interleaved comb, skipping bin 0 (DC belongs to the
            // operating point, not the excitation).
            let bin = 1 + channel % n_channels + i * n_channels;
            let phase =
                phase0 - std::f64::consts::PI * (i * i.wrapping_sub(1)) as f64 / n_tones as f64;
            let w = std::f64::consts::TAU * bin as f64 / n as f64;
            for (t, o) in out.iter_mut().enumerate() {
                *o += (w * t as f64 + phase).cos();
            }
        }
        let peak = out.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1e-300);
        for o in &mut out {
            *o /= peak;
        }
        out
    }

    /// Shapes a normalized `[−1, 1]` schedule onto a quantized actuator
    /// grid: the amplitude window `[lo, hi]` (in actuator units) is mapped
    /// linearly and each sample snapped to the nearest admissible grid
    /// point. Returns grid *indices*, ready for `grid.values()[idx]`.
    ///
    /// When the window spans fewer than two grid points the signal
    /// degenerates to a constant; the caller should widen the window — the
    /// returned schedule makes the problem visible (all indices equal)
    /// rather than silently exciting nothing.
    pub fn shape_to_grid(signal: &[f64], grid: &InputGrid, lo: f64, hi: f64) -> Vec<usize> {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        signal
            .iter()
            .map(|&v| {
                let x = lo + (v.clamp(-1.0, 1.0) + 1.0) * 0.5 * (hi - lo);
                grid.quantize_index(x)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulate a known 2-input 2-output ARX system and return (u, y).
    fn known_system_data(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut u = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        let (mut y1, mut y2) = (0.0f64, 0.0f64);
        let (mut y1p, mut y2p) = (0.0f64, 0.0f64);
        let (mut u1p, mut u2p) = (0.0f64, 0.0f64);
        let mut seed = 7u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for _ in 0..n {
            let u1 = rng();
            let u2 = rng();
            y.push(vec![y1, y2]);
            u.push(vec![u1, u2]);
            let ny1 = 0.6 * y1 - 0.1 * y2 + 0.05 * y1p + 0.4 * u1p + 0.1 * u2p;
            let ny2 = 0.2 * y1 + 0.5 * y2 - 0.02 * y2p + 0.3 * u2p;
            y1p = y1;
            y2p = y2;
            u1p = u1;
            u2p = u2;
            y1 = ny1;
            y2 = ny2;
        }
        (u, y)
    }

    #[test]
    fn arx_recovers_known_mimo_system() {
        let (u, y) = known_system_data(800);
        let cfg = SysIdConfig {
            na: 2,
            nb: 2,
            nc: 0,
            plr_iters: 0,
            ridge: 0.0,
        };
        let model = fit_arx(&u, &y, cfg).unwrap();
        assert!(model.fit[0] > 0.98, "fit[0] = {}", model.fit[0]);
        assert!(model.fit[1] > 0.98, "fit[1] = {}", model.fit[1]);
        // Check a few recovered coefficients.
        assert!((model.theta[(0, 0)] - 0.6).abs() < 0.05);
        assert!((model.theta[(1, 1)] - 0.5).abs() < 0.05);
    }

    #[test]
    fn realization_reproduces_training_io() {
        let (u, y) = known_system_data(400);
        let cfg = SysIdConfig {
            na: 2,
            nb: 2,
            nc: 0,
            plr_iters: 0,
            ridge: 0.0,
        };
        let model = fit_arx(&u, &y, cfg).unwrap();
        // Free-run the realization on the same inputs: output should track.
        let sim = model.sys.simulate(&u).unwrap();
        let mut err = 0.0;
        let mut nrm = 0.0;
        for t in 50..u.len() {
            err += (sim[t][0] - y[t][0]).powi(2) + (sim[t][1] - y[t][1]).powi(2);
            nrm += y[t][0].powi(2) + y[t][1].powi(2);
        }
        assert!(err / nrm.max(1e-12) < 0.05, "free-run error {}", err / nrm);
    }

    #[test]
    fn armax_handles_colored_noise_better() {
        // System with MA(1) noise: ARX estimates are biased, ARMAX less so.
        let n = 1500;
        let mut u = Vec::new();
        let mut y = Vec::new();
        let mut state = 0.0f64;
        let mut e_prev = 0.0f64;
        let mut seed = 99u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let mut up = 0.0f64;
        for _ in 0..n {
            let ut = rng();
            let e = 0.1 * rng();
            y.push(vec![state]);
            u.push(vec![ut]);
            state = 0.7 * state + 0.5 * up + e + 0.8 * e_prev;
            e_prev = e;
            up = ut;
        }
        let cfg = SysIdConfig {
            na: 1,
            nb: 1,
            nc: 1,
            plr_iters: 4,
            ridge: 0.0,
        };
        let armax = fit_armax(&u, &y, cfg).unwrap();
        // ARMAX should still find the pole near 0.7.
        assert!(
            (armax.theta[(0, 0)] - 0.7).abs() < 0.1,
            "pole {}",
            armax.theta[(0, 0)]
        );
    }

    #[test]
    fn too_little_data_rejected() {
        let u = vec![vec![0.0]; 3];
        let y = vec![vec![0.0]; 3];
        assert!(fit_arx(&u, &y, SysIdConfig::default()).is_err());
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let u = vec![vec![0.0]; 100];
        let y = vec![vec![0.0]; 99];
        assert!(fit_arx(&u, &y, SysIdConfig::default()).is_err());
    }

    #[test]
    fn unexcited_input_rejected() {
        // Constant input/output: regressor is rank deficient.
        let u = vec![vec![1.0]; 100];
        let y = vec![vec![1.0]; 100];
        assert!(matches!(
            fit_arx(&u, &y, SysIdConfig::default()),
            Err(Error::Singular { .. })
        ));
    }

    #[test]
    fn stabilized_contracts_unstable_model() {
        let (u, y) = known_system_data(300);
        let cfg = SysIdConfig {
            na: 1,
            nb: 1,
            nc: 0,
            plr_iters: 0,
            ridge: 0.0,
        };
        let model = fit_arx(&u, &y, cfg).unwrap();
        // Force instability by inflating theta, then stabilize.
        let mut inflated = model.clone();
        inflated.theta = model.theta.scale(3.0);
        let sys = super::realize_arx(&inflated.theta, 2, 2, 1, 1).unwrap();
        inflated.sys = sys;
        let fixed = inflated.stabilized(0.98).unwrap();
        assert!(yukta_linalg::eig::spectral_radius(fixed.sys.a()).unwrap() <= 0.99);
    }

    #[test]
    fn calibration_matches_target_dc_exactly() {
        let (u, y) = known_system_data(400);
        let cfg = SysIdConfig {
            na: 2,
            nb: 2,
            nc: 0,
            plr_iters: 0,
            ridge: 0.0,
        };
        let model = fit_arx(&u, &y, cfg).unwrap();
        let mut target = model.sys.dc_gain().unwrap();
        target[(0, 0)] *= 2.0;
        target[(1, 1)] += 0.5;
        let fixed = calibrate_dc_gains(&model.sys, &target).unwrap();
        let got = fixed.dc_gain().unwrap();
        assert!(got.approx_eq(&target, 1e-9), "{got:?} vs {target:?}");
        // Poles unchanged.
        let p1 = model.sys.poles().unwrap();
        let p2 = fixed.poles().unwrap();
        let s1: f64 = p1.iter().map(|e| e.re).sum();
        let s2: f64 = p2.iter().map(|e| e.re).sum();
        assert!((s1 - s2).abs() < 1e-10);
    }

    #[test]
    fn calibration_rejects_bad_shape() {
        let (u, y) = known_system_data(300);
        let model = fit_arx(
            &u,
            &y,
            SysIdConfig {
                na: 1,
                nb: 1,
                nc: 0,
                plr_iters: 0,
                ridge: 0.0,
            },
        )
        .unwrap();
        let bad = Mat::zeros(3, 2);
        assert!(calibrate_dc_gains(&model.sys, &bad).is_err());
    }

    #[test]
    fn validation_residual_small_on_training_system() {
        let (u, y) = known_system_data(600);
        let cfg = SysIdConfig {
            na: 2,
            nb: 2,
            nc: 0,
            plr_iters: 0,
            ridge: 0.0,
        };
        let model = fit_arx(&u[..400], &y[..400], cfg).unwrap();
        // Held-out tail of the same noiseless system: residual near zero.
        let r = validation_residual(&u[400..], &y[400..], &model).unwrap();
        assert!(r < 0.05, "residual {r}");
        // A deliberately wrong model must show a large residual.
        let mut broken = model.clone();
        broken.theta = model.theta.scale(0.3);
        let rb = validation_residual(&u[400..], &y[400..], &broken).unwrap();
        assert!(rb > 0.3, "broken residual {rb}");
    }

    #[test]
    fn prbs_is_binary_and_respects_hold() {
        let s = excitation::prbs_sequence(42, 3, 200, 4);
        assert_eq!(s.len(), 200);
        assert!(s.iter().all(|&v| v == 1.0 || v == -1.0));
        for t in 0..200 {
            assert_eq!(s[t], s[t - t % 4], "chip broken at {t}");
        }
        // Both levels show up: a maximum-length LFSR is balanced.
        assert!(s.contains(&1.0) && s.contains(&-1.0));
    }

    #[test]
    fn excitation_streams_are_deterministic_and_channel_isolated() {
        let a = excitation::prbs_sequence(7, 0, 128, 1);
        let b = excitation::prbs_sequence(7, 0, 128, 1);
        assert_eq!(a, b, "same seed+channel must replay bit-identically");
        let c = excitation::prbs_sequence(7, 1, 128, 1);
        assert_ne!(a, c, "channels must get independent streams");
        let d = excitation::prbs_sequence(8, 0, 128, 1);
        assert_ne!(a, d, "different seeds must differ");
        let m0 = excitation::multisine_sequence(7, 0, 3, 256, 5);
        assert_eq!(m0, excitation::multisine_sequence(7, 0, 3, 256, 5));
        assert_ne!(m0, excitation::multisine_sequence(7, 1, 3, 256, 5));
    }

    #[test]
    fn multisine_hits_only_its_own_comb_bins() {
        let n = 256;
        let n_ch = 3;
        let s = excitation::multisine_sequence(11, 1, n_ch, n, 4);
        assert!(s.iter().all(|&v| v.abs() <= 1.0 + 1e-12));
        // DFT magnitude at each bin: energy only at bins 2, 5, 8, 11
        // (1 + channel + i·n_channels).
        let power = |bin: usize| -> f64 {
            let w = std::f64::consts::TAU * bin as f64 / n as f64;
            let (mut re, mut im) = (0.0f64, 0.0f64);
            for (t, &v) in s.iter().enumerate() {
                re += v * (w * t as f64).cos();
                im += v * (w * t as f64).sin();
            }
            (re * re + im * im).sqrt() / n as f64
        };
        for i in 0..4 {
            let own = 1 + 1 + i * n_ch;
            assert!(power(own) > 0.05, "missing power at own bin {own}");
        }
        for other in [1, 3, 4, 6, 7, 9] {
            assert!(power(other) < 1e-9, "leakage into bin {other}");
        }
    }

    #[test]
    fn shape_to_grid_snaps_to_admissible_points() {
        let grid = crate::quant::InputGrid::stepped(0.2, 2.0, 0.2);
        let sig = excitation::prbs_sequence(3, 0, 50, 2);
        let idx = excitation::shape_to_grid(&sig, &grid, 0.6, 1.8);
        assert_eq!(idx.len(), 50);
        for &i in &idx {
            let v = grid.values()[i];
            assert!((0.6 - 1e-9..=1.8 + 1e-9).contains(&v), "value {v}");
        }
        // A binary signal on a linear map touches exactly the two window
        // endpoints after quantization.
        let distinct: std::collections::BTreeSet<usize> = idx.iter().copied().collect();
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn with_sample_period_retags() {
        let (u, y) = known_system_data(300);
        let model = fit_arx(
            &u,
            &y,
            SysIdConfig {
                na: 1,
                nb: 1,
                nc: 0,
                plr_iters: 0,
                ridge: 0.0,
            },
        )
        .unwrap();
        let m2 = model.with_sample_period(0.5).unwrap();
        assert_eq!(m2.sys.ts(), Some(0.5));
    }
}
