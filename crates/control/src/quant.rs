//! Actuator saturation/quantization and signal normalization.
//!
//! SSV controllers are designed against *realistic* inputs (Section II-B of
//! the paper): every actuator takes a bounded, discrete set of values. The
//! [`InputGrid`] type carries that set and snaps continuous controller
//! commands onto it; [`SignalScaler`] maps raw physical signals into the
//! normalized ±1 space in which models are identified and controllers run.

use serde::{Deserialize, Serialize};

/// The legal discrete values of one actuator, sorted ascending.
///
/// ```
/// use yukta_control::quant::InputGrid;
///
/// let freq = InputGrid::stepped(0.2, 2.0, 0.1);
/// assert_eq!(freq.quantize(1.234), 1.2);
/// assert_eq!(freq.quantize(9.0), 2.0); // saturates
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputGrid {
    values: Vec<f64>,
}

impl InputGrid {
    /// Builds a grid from an explicit list of allowed values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn new(mut values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "InputGrid requires at least one value");
        values.sort_by(|a, b| a.partial_cmp(b).expect("NaN in InputGrid"));
        values.dedup();
        InputGrid { values }
    }

    /// Builds an evenly stepped grid `lo, lo+step, …, hi` (inclusive, with
    /// floating-point-tolerant endpoint handling).
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0` or `hi < lo`.
    pub fn stepped(lo: f64, hi: f64, step: f64) -> Self {
        assert!(step > 0.0 && hi >= lo, "invalid InputGrid::stepped range");
        let n = ((hi - lo) / step + 0.5).floor() as usize;
        let values = (0..=n).map(|k| lo + k as f64 * step).collect();
        InputGrid::new(values)
    }

    /// The allowed values, ascending.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Smallest allowed value.
    pub fn min(&self) -> f64 {
        self.values[0]
    }

    /// Largest allowed value.
    pub fn max(&self) -> f64 {
        *self.values.last().expect("non-empty by construction")
    }

    /// Nearest allowed value to `x` (ties resolve downward).
    pub fn quantize(&self, x: f64) -> f64 {
        let mut best = self.values[0];
        let mut best_d = (x - best).abs();
        for &v in &self.values[1..] {
            let d = (x - v).abs();
            if d < best_d {
                best = v;
                best_d = d;
            }
        }
        best
    }

    /// The index of the nearest allowed value.
    pub fn quantize_index(&self, x: f64) -> usize {
        let q = self.quantize(x);
        self.values
            .iter()
            .position(|&v| v == q)
            .expect("quantize returns a grid member")
    }

    /// The largest gap between adjacent allowed values, used to size the
    /// quantization-uncertainty guardband during synthesis.
    pub fn max_gap(&self) -> f64 {
        self.values
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(0.0f64, f64::max)
    }

    /// Number of allowed values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the grid has exactly one value (a fixed actuator).
    pub fn is_empty(&self) -> bool {
        false // grids are never empty by construction
    }
}

/// An affine normalization of one physical signal onto ±1.
///
/// ```
/// use yukta_control::quant::SignalScaler;
///
/// let s = SignalScaler::from_range(0.0, 4.0);
/// assert_eq!(s.normalize(4.0), 1.0);
/// assert_eq!(s.denormalize(-1.0), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignalScaler {
    center: f64,
    half_range: f64,
}

impl SignalScaler {
    /// A scaler mapping `[lo, hi]` onto `[−1, 1]`.
    ///
    /// Degenerate ranges (hi ≈ lo) fall back to a unit half-range so the
    /// map stays invertible.
    pub fn from_range(lo: f64, hi: f64) -> Self {
        let center = 0.5 * (lo + hi);
        let half = 0.5 * (hi - lo);
        SignalScaler {
            center,
            half_range: if half.abs() < 1e-12 { 1.0 } else { half },
        }
    }

    /// A scaler inferred from observed data (min/max of the samples).
    pub fn from_data(samples: &[f64]) -> Self {
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if lo.is_finite() && hi.is_finite() {
            SignalScaler::from_range(lo, hi)
        } else {
            SignalScaler::from_range(-1.0, 1.0)
        }
    }

    /// The identity scaler.
    pub fn identity() -> Self {
        SignalScaler {
            center: 0.0,
            half_range: 1.0,
        }
    }

    /// Physical → normalized.
    pub fn normalize(&self, x: f64) -> f64 {
        (x - self.center) / self.half_range
    }

    /// Normalized → physical.
    pub fn denormalize(&self, x: f64) -> f64 {
        x * self.half_range + self.center
    }

    /// The center of the physical range.
    pub fn center(&self) -> f64 {
        self.center
    }

    /// Half of the physical range width.
    pub fn half_range(&self) -> f64 {
        self.half_range
    }

    /// Converts a physical *difference* to normalized units (no offset).
    pub fn normalize_delta(&self, dx: f64) -> f64 {
        dx / self.half_range
    }
}

impl Default for SignalScaler {
    fn default() -> Self {
        SignalScaler::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stepped_grid_matches_paper_frequencies() {
        // Big cluster: 0.2 to 2.0 GHz in 0.1 steps → 19 values.
        let g = InputGrid::stepped(0.2, 2.0, 0.1);
        assert_eq!(g.len(), 19);
        assert!((g.min() - 0.2).abs() < 1e-12);
        assert!((g.max() - 2.0).abs() < 1e-12);
        // Little cluster: 0.2 to 1.4 GHz → 13 values.
        assert_eq!(InputGrid::stepped(0.2, 1.4, 0.1).len(), 13);
        // Core counts: 1..4.
        assert_eq!(InputGrid::stepped(1.0, 4.0, 1.0).len(), 4);
    }

    #[test]
    fn quantize_snaps_to_nearest() {
        let g = InputGrid::new(vec![1.0, 2.0, 4.0]);
        assert_eq!(g.quantize(1.4), 1.0);
        assert_eq!(g.quantize(1.6), 2.0);
        assert_eq!(g.quantize(3.5), 4.0);
        assert_eq!(g.quantize(-10.0), 1.0);
        assert_eq!(g.quantize(100.0), 4.0);
    }

    #[test]
    fn quantize_is_idempotent() {
        let g = InputGrid::stepped(0.2, 2.0, 0.1);
        for &v in g.values() {
            assert_eq!(g.quantize(v), v);
        }
    }

    #[test]
    fn quantize_index_roundtrip() {
        let g = InputGrid::new(vec![0.5, 1.5, 2.5]);
        assert_eq!(g.quantize_index(1.4), 1);
        assert_eq!(g.values()[g.quantize_index(2.9)], 2.5);
    }

    #[test]
    fn max_gap() {
        let g = InputGrid::new(vec![0.0, 0.1, 0.5, 0.6]);
        assert!((g.max_gap() - 0.4).abs() < 1e-12);
        assert_eq!(InputGrid::new(vec![3.0]).max_gap(), 0.0);
    }

    #[test]
    fn grid_sorts_and_dedups() {
        let g = InputGrid::new(vec![2.0, 1.0, 2.0, 3.0]);
        assert_eq!(g.values(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn scaler_roundtrip() {
        let s = SignalScaler::from_range(2.0, 10.0);
        for &x in &[2.0, 3.7, 10.0, -1.0, 12.0] {
            assert!((s.denormalize(s.normalize(x)) - x).abs() < 1e-12);
        }
        assert_eq!(s.normalize(6.0), 0.0);
    }

    #[test]
    fn scaler_from_data() {
        let s = SignalScaler::from_data(&[1.0, 5.0, 3.0]);
        assert_eq!(s.normalize(1.0), -1.0);
        assert_eq!(s.normalize(5.0), 1.0);
    }

    #[test]
    fn degenerate_range_stays_invertible() {
        let s = SignalScaler::from_range(3.0, 3.0);
        assert_eq!(s.denormalize(s.normalize(3.0)), 3.0);
        assert_eq!(s.half_range(), 1.0);
    }

    #[test]
    fn normalize_delta_has_no_offset() {
        let s = SignalScaler::from_range(10.0, 20.0);
        assert_eq!(s.normalize_delta(5.0), 1.0);
        assert_eq!(s.normalize_delta(0.0), 0.0);
    }
}
