#![recursion_limit = "1024"]
//! Property-based tests for the fault-containment supervisor: whatever the
//! sensor view contains — bounded noise, wild out-of-range values, NaN,
//! infinities, or a stuck repeating pattern — every scheme's supervised
//! step must return finite, in-range actuations and never panic.

use proptest::prelude::*;
use yukta_control::dk::SsvSynthesis;
use yukta_control::lqg::{LqgTracker, LqgWeights};
use yukta_control::ss::StateSpace;
use yukta_core::controllers::heuristic::{
    CoordinatedHeuristicHw, CoordinatedHeuristicOs, DecoupledHeuristicHw, DecoupledHeuristicOs,
};
use yukta_core::controllers::lqg_ctl::{LqgHwController, LqgOsController, MonolithicLqg};
use yukta_core::controllers::ssv::{SsvHwController, SsvOsController};
use yukta_core::controllers::{HwSense, OsSense};
use yukta_core::optimizer::{HwOptimizer, OsOptimizer};
use yukta_core::schemes::Controllers;
use yukta_core::signals::{HwInputs, HwOutputs, Limits, OsInputs, OsOutputs};
use yukta_core::supervisor::{Supervisor, SupervisorConfig};
use yukta_linalg::Mat;

/// A stand-in SSV synthesis with the right I/O shape: a small static gain.
fn dummy_synthesis(n_out: usize, n_in: usize) -> SsvSynthesis {
    let mut d = Mat::zeros(n_out, n_in);
    for i in 0..n_out {
        d[(i, i)] = 0.5;
    }
    SsvSynthesis {
        controller: StateSpace::from_gain(d, Some(0.5)),
        gamma: 1.0,
        mu_peak: 1.0,
        scalings: vec![1.0],
        d_sections: Vec::new(),
        iterations: 1,
        guaranteed_bounds: vec![0.2; n_out],
    }
}

/// A stable normalized test model with n inputs and n outputs (cheap to
/// design LQG trackers on, unlike the full identified models).
fn model(n: usize) -> StateSpace {
    let mut a = Mat::zeros(n, n);
    let mut b = Mat::zeros(n, n);
    for i in 0..n {
        a[(i, i)] = 0.6;
        b[(i, i)] = 0.3;
        if i + 1 < n {
            a[(i, i + 1)] = 0.05;
            b[(i, (i + 1) % n)] = 0.05;
        }
    }
    StateSpace::new(a, b, Mat::identity(n), Mat::zeros(n, n), Some(0.5)).unwrap()
}

/// One representative controller pair per scheme family.
fn all_controller_families() -> Vec<(&'static str, Controllers)> {
    let limits = Limits::default();
    vec![
        (
            "coordinated-heuristic",
            Controllers::Split {
                hw: Box::new(CoordinatedHeuristicHw::new()),
                os: Box::new(CoordinatedHeuristicOs::new()),
            },
        ),
        (
            "decoupled-heuristic",
            Controllers::Split {
                hw: Box::new(DecoupledHeuristicHw::new()),
                os: Box::new(DecoupledHeuristicOs::new()),
            },
        ),
        (
            "ssv-ssv",
            Controllers::Split {
                hw: Box::new(SsvHwController::new(
                    &dummy_synthesis(4, 11),
                    HwOptimizer::new(limits),
                )),
                os: Box::new(SsvOsController::new(
                    &dummy_synthesis(3, 10),
                    OsOptimizer::new(),
                )),
            },
        ),
        (
            "decoupled-lqg",
            Controllers::Split {
                hw: Box::new(LqgHwController::new(
                    LqgTracker::design(&model(4), LqgWeights::default()).unwrap(),
                    HwOptimizer::new(limits),
                )),
                os: Box::new(LqgOsController::new(
                    LqgTracker::design(&model(3), LqgWeights::default()).unwrap(),
                    OsOptimizer::new(),
                )),
            },
        ),
        (
            "monolithic-lqg",
            Controllers::Monolithic(Box::new(MonolithicLqg::new(
                LqgTracker::design(&model(7), LqgWeights::default()).unwrap(),
                HwOptimizer::new(limits),
                OsOptimizer::new(),
            ))),
        ),
    ]
}

/// A sensor value that may be in-range, wildly out of range, or non-finite.
fn wild(lo: f64, hi: f64) -> impl Strategy<Value = f64> {
    prop_oneof![
        6 => lo..hi,
        2 => -1e12..1e12f64,
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
    ]
}

fn hw_outputs_strategy() -> impl Strategy<Value = HwOutputs> {
    (
        wild(0.0, 15.0),
        wild(0.0, 8.0),
        wild(0.0, 1.0),
        wild(25.0, 110.0),
    )
        .prop_map(|(perf, p_big, p_little, temp)| HwOutputs {
            perf,
            p_big,
            p_little,
            temp,
        })
}

fn os_outputs_strategy() -> impl Strategy<Value = OsOutputs> {
    (wild(0.0, 4.0), wild(0.0, 12.0), wild(-8.0, 8.0)).prop_map(
        |(perf_little, perf_big, spare_diff)| OsOutputs {
            perf_little,
            perf_big,
            spare_diff,
        },
    )
}

fn senses_strategy() -> impl Strategy<Value = (HwSense, OsSense)> {
    (
        hw_outputs_strategy(),
        os_outputs_strategy(),
        1usize..=8,
        1.0..4.0f64,
        1.0..4.0f64,
        0.2..2.0f64,
        0.2..1.4f64,
    )
        .prop_map(|(hw_y, os_y, n_active, bc, lc, fb, fl)| {
            let current_hw = HwInputs {
                big_cores: bc.round(),
                little_cores: lc.round(),
                f_big: fb,
                f_little: fl,
            };
            let current_os = OsInputs {
                threads_big: (n_active / 2) as f64,
                packing_big: 1.0,
                packing_little: 1.0,
            };
            let limits = Limits::default();
            (
                HwSense {
                    outputs: hw_y,
                    ext: current_os,
                    current: current_hw,
                    active_threads: n_active,
                    slo: Default::default(),
                    limits,
                },
                OsSense {
                    outputs: os_y,
                    ext: current_hw,
                    current: current_os,
                    active_threads: n_active,
                    system: hw_y,
                    slo: Default::default(),
                    limits,
                },
            )
        })
}

fn assert_legal(name: &str, k: usize, hu: &HwInputs, ou: &OsInputs, n_active: usize) {
    for v in hu.to_vec().iter().chain(ou.to_vec().iter()) {
        assert!(v.is_finite(), "{name} step {k}: non-finite actuation {v}");
    }
    assert!(
        (1.0..=4.0).contains(&hu.big_cores),
        "{name} step {k}: big_cores {}",
        hu.big_cores
    );
    assert!(
        (1.0..=4.0).contains(&hu.little_cores),
        "{name} step {k}: little_cores {}",
        hu.little_cores
    );
    assert!(
        (0.2..=2.0).contains(&hu.f_big),
        "{name} step {k}: f_big {}",
        hu.f_big
    );
    assert!(
        (0.2..=1.4).contains(&hu.f_little),
        "{name} step {k}: f_little {}",
        hu.f_little
    );
    assert!(
        ou.threads_big >= 0.0 && ou.threads_big <= n_active as f64,
        "{name} step {k}: threads_big {} of {n_active}",
        ou.threads_big
    );
    assert!(
        (1.0..=4.0).contains(&ou.packing_big),
        "{name} step {k}: packing_big {}",
        ou.packing_big
    );
    assert!(
        (1.0..=4.0).contains(&ou.packing_little),
        "{name} step {k}: packing_little {}",
        ou.packing_little
    );
}

/// Feeding the same (possibly poisoned) sense repeatedly also walks the
/// stuck-sensor watchdog and hysteresis paths.
fn check_arbitrary_senses(hw: &HwSense, os: &OsSense, steps: usize) {
    for (name, controllers) in all_controller_families() {
        let mut sup = Supervisor::new(controllers, SupervisorConfig::default());
        for k in 0..steps {
            let (hu, ou) = sup.step(hw, os);
            assert_legal(name, k, &hu, &ou, os.active_threads);
        }
        // Whatever happened, the counters stayed coherent.
        let st = sup.stats();
        assert_eq!(st.invocations, steps as u64);
        assert!(st.degraded_invocations <= st.invocations);
        assert!(st.fallback_exits <= st.fallback_entries);
    }
}

/// Alternating clean and poisoned samples exercises demotion and
/// re-engagement repeatedly; the legality guarantee must hold across
/// every transition.
fn check_mode_transitions(bad: &(HwSense, OsSense), clean: &(HwSense, OsSense), period: usize) {
    let (bad_hw, bad_os) = bad;
    // Force the "clean" pair to actually be finite and in range.
    let mut clean_hw = clean.0;
    let mut clean_os = clean.1;
    clean_hw.outputs = HwOutputs {
        perf: 3.0,
        p_big: 2.0,
        p_little: 0.2,
        temp: 60.0,
    };
    clean_os.outputs = OsOutputs {
        perf_little: 0.3,
        perf_big: 2.0,
        spare_diff: 0.0,
    };
    clean_os.system = clean_hw.outputs;
    for (name, controllers) in all_controller_families() {
        let mut sup = Supervisor::new(controllers, SupervisorConfig::default());
        for k in 0..24 {
            let poisoned = (k / period).is_multiple_of(2);
            let (hu, ou) = if poisoned {
                sup.step(bad_hw, bad_os)
            } else {
                // Jitter the clean readings so they never look stuck.
                let mut h = clean_hw;
                let mut o = clean_os;
                h.outputs.p_big += 1e-9 * k as f64;
                h.outputs.temp += 1e-9 * k as f64;
                o.system = h.outputs;
                sup.step(&h, &o)
            };
            let n = if poisoned {
                bad_os.active_threads
            } else {
                clean_os.active_threads
            };
            assert_legal(name, k, &hu, &ou, n);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_scheme_survives_arbitrary_senses(
        senses in senses_strategy(),
        steps in 2usize..10,
    ) {
        check_arbitrary_senses(&senses.0, &senses.1, steps);
    }

    #[test]
    fn mode_transitions_never_emit_illegal_actuations(
        bad in senses_strategy(),
        clean in senses_strategy(),
        period in 1usize..6,
    ) {
        check_mode_transitions(&bad, &clean, period);
    }
}
