//! Property test for the observability layer's zero-interference
//! guarantee: a fully instrumented supervised + faulted run (an enabled
//! in-memory recorder attached to the experiment) must produce a
//! [`Report`] bit-identical to the uninstrumented run, for arbitrary
//! fault seeds and severities. Telemetry observes the run; it never
//! steers it.

use std::sync::Arc;

use proptest::prelude::*;
use yukta_board::FaultPlan;
use yukta_core::metrics::Report;
use yukta_core::runtime::{Experiment, RunOptions};
use yukta_core::schemes::Scheme;
use yukta_core::supervisor::SupervisorConfig;
use yukta_obs::mem::MemRecorder;
use yukta_workloads::catalog;

/// Short simulated horizon: long enough to cross several controller
/// invocations, fault injections, and supervisor transitions; short
/// enough to keep the property affordable.
fn quick_options() -> RunOptions {
    RunOptions {
        timeout_s: 60.0,
        keep_trace: true,
        ..Default::default()
    }
}

/// Runs the same supervised + faulted experiment twice — bare, then with
/// an *enabled* recorder attached — and returns both reports plus the
/// number of telemetry records the instrumented run captured.
fn run_pair(seed: u64, severity: f64) -> (Report, Report, usize) {
    let wl = catalog::parsec::blackscholes();
    let plan = FaultPlan::uniform(seed, severity);
    let bare = Experiment::new(Scheme::CoordinatedHeuristic)
        .unwrap()
        .with_options(quick_options())
        .run_supervised(&wl, SupervisorConfig::default(), Some(plan.clone()))
        .unwrap();
    let rec = Arc::new(MemRecorder::new());
    let instrumented = Experiment::new(Scheme::CoordinatedHeuristic)
        .unwrap()
        .with_options(quick_options())
        .with_recorder(rec.clone())
        .run_supervised(&wl, SupervisorConfig::default(), Some(plan))
        .unwrap();
    let records = rec.snapshot().entries.len();
    (bare, instrumented, records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn instrumented_run_is_bit_identical_to_bare(
        seed in 0u64..=u32::MAX as u64,
        severity in 0.1f64..1.0,
    ) {
        let (bare, instrumented, records) = run_pair(seed, severity);
        prop_assert!(
            bare.bit_identical(&instrumented),
            "telemetry perturbed the run (seed {seed}, severity {severity:.3})"
        );
        prop_assert!(records > 0, "enabled recorder captured nothing");
    }
}
