#![recursion_limit = "1024"]
//! Chaos property tests for the checked reconfiguration automaton: the
//! composed failure space (sensor faults × correlated bursts × injected
//! crashes × mid-run hot-swaps) must never panic, never violate a mode
//! invariant, and — whenever a crash fires — recover bit-identically to
//! the uninterrupted twin, no matter where the crash lands relative to
//! the swap boundary.

use proptest::prelude::*;
use yukta_board::FaultPlan;
use yukta_core::runtime::{Experiment, RecoveryOptions, RunOptions, SwapSpec, UnifiedOptions};
use yukta_core::schemes::Scheme;
use yukta_core::supervisor::SupervisorConfig;
use yukta_workloads::catalog;

fn quick_options() -> RunOptions {
    RunOptions {
        timeout_s: 400.0,
        ..Default::default()
    }
}

/// A crash injected `offset` invocations from the swap boundary must be
/// invisible in the final report: recovery rolls back, replays, and (for
/// offsets ≤ 0) re-performs the swap by recipe.
fn check_crash_offset(seed: u64, severity: f64, swap_at: u64, offset: i64) {
    let wl = catalog::spec::mcf();
    let exp = Experiment::new(Scheme::CoordinatedHeuristic)
        .unwrap()
        .with_options(quick_options());
    let crash_at = swap_at.saturating_add_signed(offset).max(1);
    let plan = FaultPlan::uniform(seed, severity).with_crash(crash_at);
    // run_supervised_with_swap strips crash points, so the same plan
    // doubles as the uninterrupted baseline.
    let base = exp
        .run_supervised_with_swap(
            &wl,
            SupervisorConfig::default(),
            Some(plan.clone()),
            swap_at,
            None,
        )
        .unwrap();
    let run = exp
        .run_unified(
            &wl,
            UnifiedOptions {
                sup_cfg: Some(SupervisorConfig::default()),
                plan: Some(plan),
                swap: Some(SwapSpec {
                    at_step: swap_at,
                    scheme: None,
                }),
                recovery: Some(RecoveryOptions {
                    checkpoint_interval: 5,
                }),
                serving: None,
            },
        )
        .unwrap();
    assert_eq!(run.recovery.crashes, 1, "crash at {crash_at} never fired");
    assert_eq!(run.recovery.recoveries, 1);
    assert_eq!(run.recovery.replay_divergences, 0);
    assert_eq!(run.recovery.invariant_violations, 0);
    let sup = run.report.supervisor.as_ref().unwrap();
    assert_eq!(sup.invariant_violations, 0);
    assert_eq!(run.report.actuation.double_actuations, 0);
    assert_eq!(run.report.actuation.tmu_cap_expansions, 0);
    assert!(
        run.report.bit_identical(&base),
        "crash {offset:+} invocations from swap {swap_at} (severity {severity}) diverged"
    );
}

/// An arbitrary interleaving of faults, bursts, crashes, and an optional
/// cross-scheme hot-swap completes without a panic and with every
/// machine-checked invariant intact.
fn check_interleaving(
    seed: u64,
    severity: f64,
    swap_at: Option<u64>,
    bursts: bool,
    crashes: &[u64],
) {
    let wl = catalog::spec::mcf();
    let exp = Experiment::new(Scheme::CoordinatedHeuristic)
        .unwrap()
        .with_options(quick_options());
    let mut plan = FaultPlan::uniform(seed, severity);
    if bursts {
        plan = plan.with_bursts(1, 8.0).with_burst_region(10.0);
    }
    for &c in crashes {
        plan = plan.with_crash(c);
    }
    let run = exp
        .run_unified(
            &wl,
            UnifiedOptions {
                sup_cfg: Some(SupervisorConfig::default()),
                plan: Some(plan),
                swap: swap_at.map(|at| SwapSpec {
                    at_step: at,
                    scheme: Some(Scheme::DecoupledHeuristic),
                }),
                recovery: Some(RecoveryOptions {
                    checkpoint_interval: 7,
                }),
                serving: None,
            },
        )
        .unwrap();
    assert_eq!(run.recovery.crashes, run.recovery.recoveries);
    assert_eq!(run.recovery.replay_divergences, 0);
    assert_eq!(run.recovery.invariant_violations, 0);
    let sup = run.report.supervisor.as_ref().unwrap();
    assert_eq!(sup.invariant_violations, 0);
    assert_eq!(run.report.actuation.double_actuations, 0);
    assert_eq!(run.report.actuation.tmu_cap_expansions, 0);
}

fn severity_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(0.25), Just(0.5), Just(0.75)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn crash_at_any_offset_around_a_swap_recovers_bit_identically(
        seed in 0u64..1000,
        severity in severity_strategy(),
        swap_at in 4u64..10,
        offset in -3i64..=3,
    ) {
        check_crash_offset(seed, severity, swap_at, offset);
    }

    #[test]
    fn arbitrary_fault_swap_interleavings_keep_invariants(
        seed in 0u64..1000,
        severity in severity_strategy(),
        swap_raw in 0u64..12,
        bursts in 0u8..2,
        crashes in prop::collection::vec(1u64..30, 0usize..3),
    ) {
        // swap_raw < 3 means "no swap"; otherwise it is the swap step.
        let swap_at = (swap_raw >= 3).then_some(swap_raw);
        check_interleaving(seed, severity, swap_at, bursts == 1, &crashes);
    }
}

/// A correlated burst window — every sensor latched together — is the
/// failure mode independent faults rarely reach: sustained dirt that
/// walks the supervisor down the Fallback→Safe escalation edge.
#[test]
fn correlated_burst_drives_fallback_to_safe_escalation() {
    let wl = catalog::spec::mcf();
    let exp = Experiment::new(Scheme::CoordinatedHeuristic)
        .unwrap()
        .with_options(quick_options());
    let cfg = SupervisorConfig {
        escalate_after: 5,
        ..Default::default()
    };
    let plan = FaultPlan::uniform(77, 0.0)
        .with_bursts(1, 15.0)
        .with_burst_region(4.0);
    let rep = exp.run_supervised(&wl, cfg, Some(plan)).unwrap();
    let sup = rep.supervisor.unwrap();
    assert!(sup.safe_entries >= 1, "burst never escalated: {sup:?}");
    assert_eq!(sup.invariant_violations, 0);
    let faults = rep.faults.unwrap();
    assert!(faults.stats.burst_windows >= 1, "{:?}", faults.stats);
}
