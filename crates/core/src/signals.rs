//! Signal definitions shared by every controller: the inputs, outputs, and
//! external signals of Tables II and III, their physical ranges, and the
//! constraint limits of the evaluation (Section V-A).

use serde::{Deserialize, Serialize};
use yukta_control::quant::{InputGrid, SignalScaler};

/// The constraint limits used throughout the evaluation: 3.3 W big-cluster
/// power, 0.33 W little-cluster power, 79 °C hotspot — plus, for serving
/// runs, the tail-latency SLO that joins them in the B specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Limits {
    /// Sustained big-cluster power limit (W).
    pub p_big_max: f64,
    /// Sustained little-cluster power limit (W).
    pub p_little_max: f64,
    /// Hotspot temperature limit (°C).
    pub temp_max: f64,
    /// p99 request-latency SLO (s). Like the power/thermal limits this
    /// is a B-specification bound: the controllers treat it as a
    /// constraint, the supervisor treats sustained excursions as
    /// overload. Only meaningful when a serving layer is attached.
    #[serde(default = "default_latency_slo_s")]
    pub latency_slo_s: f64,
}

fn default_latency_slo_s() -> f64 {
    1.0
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            p_big_max: 3.3,
            p_little_max: 0.33,
            temp_max: 79.0,
            latency_slo_s: default_latency_slo_s(),
        }
    }
}

/// The serving layer's SLO observation, attached to both controllers'
/// sense vectors. `active` is false on batch runs (every field zero),
/// which keeps non-serving executions bit-identical to the pre-serving
/// code path — controllers must gate any SLO-aware behavior on it.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SloSense {
    /// A serving layer is attached and the fields below are live.
    pub active: bool,
    /// p95 request latency over the stats window (s).
    pub p95_s: f64,
    /// p99 request latency over the stats window (s).
    pub p99_s: f64,
    /// Admission-queue backlog as a fraction of its cap.
    pub backlog_frac: f64,
    /// Requests dropped (shed + rejected + timed out) over the window,
    /// as a fraction of completions + drops.
    pub drop_frac: f64,
}

impl SloSense {
    /// Headroom of the p99 against the SLO bound: negative when the
    /// bound is violated. Mirrors how the power limits enter the B spec.
    pub fn headroom_s(&self, limits: &Limits) -> f64 {
        limits.latency_slo_s - self.p99_s
    }
}

/// The hardware controller's measured outputs (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HwOutputs {
    /// Total committed BIPS across both clusters.
    pub perf: f64,
    /// Big-cluster power (W), from the 260 ms sensor.
    pub p_big: f64,
    /// Little-cluster power (W).
    pub p_little: f64,
    /// Hotspot temperature (°C).
    pub temp: f64,
}

impl HwOutputs {
    /// Outputs as a vector in Table II order.
    pub fn to_vec(self) -> [f64; 4] {
        [self.perf, self.p_big, self.p_little, self.temp]
    }
}

/// The hardware controller's actuated inputs (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwInputs {
    /// Powered big cores (1–4).
    pub big_cores: f64,
    /// Powered little cores (1–4).
    pub little_cores: f64,
    /// Big-cluster frequency (GHz).
    pub f_big: f64,
    /// Little-cluster frequency (GHz).
    pub f_little: f64,
}

impl HwInputs {
    /// Inputs as a vector in Table II order.
    pub fn to_vec(self) -> [f64; 4] {
        [self.big_cores, self.little_cores, self.f_big, self.f_little]
    }
}

/// The software controller's actuated inputs (Table III) — also the
/// hardware controller's external signals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OsInputs {
    /// Threads assigned to the big cluster.
    pub threads_big: f64,
    /// Average threads per non-idle big core.
    pub packing_big: f64,
    /// Average threads per non-idle little core.
    pub packing_little: f64,
}

impl OsInputs {
    /// Inputs as a vector in Table III order.
    pub fn to_vec(self) -> [f64; 3] {
        [self.threads_big, self.packing_big, self.packing_little]
    }
}

/// The software controller's measured outputs (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OsOutputs {
    /// Little-cluster committed BIPS.
    pub perf_little: f64,
    /// Big-cluster committed BIPS.
    pub perf_big: f64,
    /// Difference in spare compute capacity, big − little (Equation 2).
    pub spare_diff: f64,
}

impl OsOutputs {
    /// Outputs as a vector in Table III order.
    pub fn to_vec(self) -> [f64; 3] {
        [self.perf_little, self.perf_big, self.spare_diff]
    }
}

/// Spare compute capacity of a cluster (Equation 2 of the paper):
/// `SC = #idle_cores_on − (#threads − #cores_on)`.
pub fn spare_capacity(cores_on: usize, threads: usize) -> f64 {
    let idle_on = cores_on.saturating_sub(threads) as f64;
    idle_on - (threads as f64 - cores_on as f64)
}

/// Fixed normalization ranges for every signal, set once from the board's
/// physical envelope (the paper derives them from the training
/// characterization).
#[derive(Debug, Clone)]
pub struct SignalRanges {
    /// Total performance (BIPS).
    pub perf: SignalScaler,
    /// Big-cluster power (W).
    pub p_big: SignalScaler,
    /// Little-cluster power (W).
    pub p_little: SignalScaler,
    /// Temperature (°C).
    pub temp: SignalScaler,
    /// Core counts (shared by both clusters).
    pub cores: SignalScaler,
    /// Big frequency (GHz).
    pub f_big: SignalScaler,
    /// Little frequency (GHz).
    pub f_little: SignalScaler,
    /// Threads on big (0–8).
    pub threads_big: SignalScaler,
    /// Packing density (1–4).
    pub packing: SignalScaler,
    /// Big-cluster performance (BIPS).
    pub perf_big: SignalScaler,
    /// Little-cluster performance (BIPS).
    pub perf_little: SignalScaler,
    /// Spare-capacity difference (−8..8).
    pub spare_diff: SignalScaler,
}

impl SignalRanges {
    /// The ranges for the XU3 envelope.
    pub fn xu3() -> Self {
        SignalRanges {
            perf: SignalScaler::from_range(0.0, 10.0),
            p_big: SignalScaler::from_range(0.0, 6.0),
            p_little: SignalScaler::from_range(0.0, 0.7),
            temp: SignalScaler::from_range(25.0, 95.0),
            cores: SignalScaler::from_range(1.0, 4.0),
            f_big: SignalScaler::from_range(0.2, 2.0),
            f_little: SignalScaler::from_range(0.2, 1.4),
            threads_big: SignalScaler::from_range(0.0, 8.0),
            packing: SignalScaler::from_range(1.0, 4.0),
            perf_big: SignalScaler::from_range(0.0, 9.0),
            perf_little: SignalScaler::from_range(0.0, 3.0),
            spare_diff: SignalScaler::from_range(-8.0, 8.0),
        }
    }

    /// Normalizes the hardware output vector.
    pub fn norm_hw_outputs(&self, y: &HwOutputs) -> [f64; 4] {
        [
            self.perf.normalize(y.perf),
            self.p_big.normalize(y.p_big),
            self.p_little.normalize(y.p_little),
            self.temp.normalize(y.temp),
        ]
    }

    /// Normalizes the hardware input vector.
    pub fn norm_hw_inputs(&self, u: &HwInputs) -> [f64; 4] {
        [
            self.cores.normalize(u.big_cores),
            self.cores.normalize(u.little_cores),
            self.f_big.normalize(u.f_big),
            self.f_little.normalize(u.f_little),
        ]
    }

    /// Normalizes the software input vector.
    pub fn norm_os_inputs(&self, u: &OsInputs) -> [f64; 3] {
        [
            self.threads_big.normalize(u.threads_big),
            self.packing.normalize(u.packing_big),
            self.packing.normalize(u.packing_little),
        ]
    }

    /// Normalizes the software output vector.
    pub fn norm_os_outputs(&self, y: &OsOutputs) -> [f64; 3] {
        [
            self.perf_little.normalize(y.perf_little),
            self.perf_big.normalize(y.perf_big),
            self.spare_diff.normalize(y.spare_diff),
        ]
    }
}

/// The discrete actuator grids of the prototype (Table II/III): core
/// counts 1–4, big frequency 0.2–2.0 GHz and little 0.2–1.4 GHz in 0.1
/// steps, threads-on-big 0–8, packing 1–4 in half-thread steps.
#[derive(Debug, Clone)]
pub struct ActuatorGrids {
    /// Big core count.
    pub big_cores: InputGrid,
    /// Little core count.
    pub little_cores: InputGrid,
    /// Big-cluster frequency.
    pub f_big: InputGrid,
    /// Little-cluster frequency.
    pub f_little: InputGrid,
    /// Threads on the big cluster.
    pub threads_big: InputGrid,
    /// Packing density.
    pub packing: InputGrid,
}

impl ActuatorGrids {
    /// The XU3 prototype grids.
    pub fn xu3() -> Self {
        ActuatorGrids {
            big_cores: InputGrid::stepped(1.0, 4.0, 1.0),
            little_cores: InputGrid::stepped(1.0, 4.0, 1.0),
            f_big: InputGrid::stepped(0.2, 2.0, 0.1),
            f_little: InputGrid::stepped(0.2, 1.4, 0.1),
            threads_big: InputGrid::stepped(0.0, 8.0, 1.0),
            packing: InputGrid::stepped(1.0, 4.0, 0.5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_limits_match_paper() {
        let l = Limits::default();
        assert_eq!(l.p_big_max, 3.3);
        assert_eq!(l.p_little_max, 0.33);
        assert_eq!(l.temp_max, 79.0);
        assert_eq!(l.latency_slo_s, 1.0);
    }

    #[test]
    fn slo_sense_headroom_mirrors_b_spec_margins() {
        let limits = Limits::default();
        let mut slo = SloSense {
            active: true,
            p99_s: 0.4,
            ..Default::default()
        };
        assert!((slo.headroom_s(&limits) - 0.6).abs() < 1e-12);
        slo.p99_s = 1.5;
        assert!(slo.headroom_s(&limits) < 0.0);
        assert!(!SloSense::default().active, "batch default is inactive");
    }

    #[test]
    fn spare_capacity_examples() {
        // 4 cores on, 2 threads: 2 idle cores, surplus 2 → SC = 2 − (−2) = 4.
        assert_eq!(spare_capacity(4, 2), 4.0);
        // 4 cores on, 4 threads: no idle, balanced → SC = 0.
        assert_eq!(spare_capacity(4, 4), 0.0);
        // 2 cores on, 6 threads: oversubscribed → SC = 0 − 4 = −4.
        assert_eq!(spare_capacity(2, 6), -4.0);
    }

    #[test]
    fn ranges_normalize_to_unit_interval() {
        let r = SignalRanges::xu3();
        assert!((r.f_big.normalize(0.2) + 1.0).abs() < 1e-12);
        assert!((r.f_big.normalize(2.0) - 1.0).abs() < 1e-12);
        assert!(r.perf.normalize(5.0).abs() < 1e-12);
        let y = HwOutputs {
            perf: 10.0,
            p_big: 6.0,
            p_little: 0.0,
            temp: 25.0,
        };
        let n = r.norm_hw_outputs(&y);
        for (got, want) in n.iter().zip([1.0, 1.0, -1.0, -1.0]) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn grids_match_paper_cardinality() {
        let g = ActuatorGrids::xu3();
        assert_eq!(g.f_big.len(), 19);
        assert_eq!(g.f_little.len(), 13);
        assert_eq!(g.big_cores.len(), 4);
        assert_eq!(g.threads_big.len(), 9);
    }

    #[test]
    fn vector_orders_match_tables() {
        let y = HwOutputs {
            perf: 1.0,
            p_big: 2.0,
            p_little: 3.0,
            temp: 4.0,
        };
        assert_eq!(y.to_vec(), [1.0, 2.0, 3.0, 4.0]);
        let u = OsInputs {
            threads_big: 5.0,
            packing_big: 1.5,
            packing_little: 2.0,
        };
        assert_eq!(u.to_vec(), [5.0, 1.5, 2.0]);
    }
}
