//! # yukta-core
//!
//! The paper's contribution: coordinated multilayer SSV resource
//! controllers for a big.LITTLE system, plus every baseline the
//! evaluation compares against.
//!
//! * [`signals`] — the inputs/outputs/external signals of Tables II/III,
//!   their ranges, grids, and the 0.33 W / 3.3 W / 79 °C limits.
//! * [`design`] — the Figure 3 pipeline: excite the board with the
//!   training workloads, identify black-box models, synthesize the SSV
//!   controllers by D–K iteration.
//! * [`controllers`] — the hardware/software SSV controllers at runtime,
//!   the coordinated and decoupled heuristics (Table IV), and the
//!   decoupled/monolithic LQG baselines (Section VI-B).
//! * [`optimizer`] — the E×D target optimizers of Section IV-D.
//! * [`schemes`] — the named two-layer schemes of the evaluation.
//! * [`runtime`] — the 500 ms control loop wiring controllers, board, and
//!   workload; produces [`metrics::Report`]s with full traces.
//! * [`modes`] — the checked reconfiguration automaton: one synchronous
//!   state machine (Primary/Fallback/Safe × swap-pending × recovering)
//!   through which every supervisor, hot-swap, and crash-recovery
//!   transition flows, with machine-checked invariants (no actuation gap,
//!   single writer per knob, no flapping) on every step.
//! * [`supervisor`] — the fault-containment layer: sanitizes sensor views,
//!   watches for stuck sensors, degrades SSV/LQG schemes to the
//!   coordinated heuristic (and ultimately a safe static configuration),
//!   and re-engages them with hysteresis — as a thin driver of [`modes`].
//! * [`recorder`] — the crash-tolerance flight recorder: an append-only
//!   journal of every invocation with a compact binary wire format and a
//!   bit-exact replay verifier, feeding
//!   [`runtime::Experiment::run_recoverable`]'s checkpoint/restore path.
//!
//! ```no_run
//! use yukta_core::runtime::Experiment;
//! use yukta_core::schemes::Scheme;
//! use yukta_workloads::catalog;
//!
//! # fn main() -> Result<(), yukta_linalg::Error> {
//! let report = Experiment::new(Scheme::YuktaHwSsvOsSsv)?
//!     .run(&catalog::parsec::blackscholes())?;
//! println!("E×D = {:.1} J·s", report.metrics.exd());
//! # Ok(())
//! # }
//! ```

pub mod controllers;
pub mod design;
pub mod health;
pub mod metrics;
pub mod modes;
pub mod optimizer;
pub mod recorder;
pub mod runtime;
pub mod schemes;
pub mod signals;
pub mod supervisor;

pub use controllers::ControllerState;
pub use health::HealthTap;
pub use metrics::{FaultReport, Metrics, Report};
pub use modes::{
    Decision, InvariantViolation, Knob, LevelChange, ModeAutomaton, ModeConfig, ModeEvent,
    ModeSnapshot, ModeState, TransitionRecord,
};
pub use recorder::{Journal, JournalRecord, ReplayOutcome};
pub use runtime::{
    AdaptiveOptions, AdaptiveRun, Experiment, InjectedCrash, RecoveredRun, RecoveryOptions,
    RecoveryReport, RunOptions, SwapCycle, SwapSpec, UnifiedOptions,
};
pub use schemes::{ControllersState, Scheme};
pub use supervisor::{
    Supervisor, SupervisorConfig, SupervisorMode, SupervisorState, SupervisorStats,
};
