//! The runtime side of online loop-health telemetry (DESIGN.md §16):
//! [`HealthTap`] distills each [`JournalRecord`] into the six scalar
//! health signals of [`yukta_obs::health::HealthSample`] and feeds them to
//! the streaming [`HealthMonitor`].
//!
//! The tap is a pure observer: it owns a copy of the design's identified
//! plant model and runs it open loop alongside the real board, so the
//! *model residual* — the gap between what the deployed model predicts and
//! what the sensors report — is exactly the quantity the µ guardband was
//! sized to absorb. Residuals are computed in the normalized signal space
//! of Table II ([`SignalRanges::xu3`]), so `residual / Δ` is the fraction
//! of the uncertainty budget the plant is currently consuming.
//!
//! Determinism contract: observing never touches the board, the engine, or
//! the recorder. A monitored-but-not-acting run is bit-identical to a bare
//! run; telemetry emission happens in the runtime and only under
//! [`Recorder::enabled`].

use yukta_control::ss::StateSpace;
use yukta_obs::health::{HealthConfig, HealthMonitor, HealthSample, HealthStats, HealthVerdict};
use yukta_obs::{Recorder, Value};

use crate::design::Design;
use crate::recorder::JournalRecord;
use crate::signals::{ActuatorGrids, SignalRanges};
use crate::supervisor::SupervisorMode;

/// Combined hardware + software input width (Table II's 4 knobs plus
/// Table III's 3), the input width of [`Design::hw_model_full`].
const N_U: usize = 7;

/// Measured output width of the identified plant model (Table II).
const N_Y: usize = 4;

/// Tolerance for "pinned at a grid rail" in physical actuator units. The
/// grids step in ≥ 0.1 increments, so anything within a millistep of a
/// rail is the rail.
const RAIL_EPS: f64 = 1e-6;

/// Adaptation rate of the prediction-bias EMA (time constant ≈ 20
/// controller periods = 10 s): fast enough to absorb the thermal creep of
/// the operating-point offset, slow enough that an abrupt plant change
/// spends many periods as a visible residual before being re-absorbed.
const BIAS_ALPHA: f64 = 0.05;

/// How many `(u, y)` pairs the tap retains for online re-identification:
/// 256 controller periods = 128 s of history, enough for a second-order
/// ARX fit while staying fixed-size (no steady-state allocation).
pub const REFIT_HISTORY_CAP: usize = 256;

/// Streams [`JournalRecord`]s into loop-health signals and the drift /
/// phase-change detectors.
#[derive(Clone)]
pub struct HealthTap {
    monitor: HealthMonitor,
    /// Reference plant model run open loop (replaced on refit).
    model: StateSpace,
    ranges: SignalRanges,
    grids: ActuatorGrids,
    /// Uncertainty radius Δ the deployed synthesis guardbanded against.
    delta: f64,
    /// Open-loop model state.
    x: Vec<f64>,
    /// Input committed at the previous step (the one this step's
    /// measurement responds to); `None` before the first actuation.
    u_prev: Option<[f64; N_U]>,
    /// Slow EMA of the per-output prediction error. The identified model
    /// is DC-calibrated to *local delta gains* around the operating point
    /// (a deviation model), so absolute open-loop prediction carries an
    /// affine offset that also creeps with temperature; the residual is
    /// judged after subtracting this bias, so it measures *changes* in
    /// the plant's local behavior, not the standing offset. `None` until
    /// the first prediction seeds it.
    bias: Option<[f64; N_Y]>,
    /// Normalized `(u, y)` history for re-identification, capped at
    /// [`REFIT_HISTORY_CAP`].
    hist_u: Vec<Vec<f64>>,
    hist_y: Vec<Vec<f64>>,
}

impl HealthTap {
    /// Builds a tap against the experiment's design: the residual model is
    /// [`Design::hw_model_full`] and the margin denominator is
    /// [`Design::hw_uncertainty_used`].
    ///
    /// # Errors
    ///
    /// Propagates [`HealthConfig::validate`] failures.
    pub fn new(
        design: &Design,
        cfg: HealthConfig,
    ) -> Result<Self, yukta_obs::health::HealthConfigError> {
        let mut monitor = HealthMonitor::new(cfg)?;
        // Treat run start like a hot-swap: the loop spends its first
        // seconds ramping from the reset actuation to the operating point,
        // and a baseline learned on that transient reads the settled
        // regime as a persistent shift. The re-arm hold-off skips it.
        monitor.rearm();
        Ok(HealthTap {
            monitor,
            model: design.hw_model_full.clone(),
            ranges: SignalRanges::xu3(),
            grids: ActuatorGrids::xu3(),
            delta: design.hw_uncertainty_used.max(1e-9),
            x: vec![0.0; design.hw_model_full.order()],
            u_prev: None,
            bias: None,
            hist_u: Vec::with_capacity(REFIT_HISTORY_CAP),
            hist_y: Vec::with_capacity(REFIT_HISTORY_CAP),
        })
    }

    /// Distills one invocation record into a [`HealthSample`], advances
    /// the open-loop model, and runs the detectors. Pure with respect to
    /// the run: no I/O, no recorder.
    pub fn observe(&mut self, r: &JournalRecord) -> HealthVerdict {
        let u = self.normalized_input(r);
        let y = self.ranges.norm_hw_outputs(&r.hw_sense.outputs);
        // The sense at step k was taken before this step's actuation, so
        // it responds to the *previous* input. One-step-ahead prediction:
        // ŷ_k = C x_k + D u_{k−1}; residual in ∞-norm of normalized units.
        let residual = match self.u_prev {
            Some(up) => {
                let pred = self.predict(&up);
                let mut err = [0.0; N_Y];
                for i in 0..N_Y {
                    err[i] = pred[i] - y[i];
                }
                let bias = self.bias.get_or_insert(err);
                let r = (0..N_Y)
                    .map(|i| (err[i] - bias[i]).abs())
                    .fold(0.0f64, f64::max);
                for i in 0..N_Y {
                    bias[i] += BIAS_ALPHA * (err[i] - bias[i]);
                }
                r
            }
            None => 0.0,
        };
        self.advance(&u);
        self.u_prev = Some(u);
        if self.hist_u.len() == REFIT_HISTORY_CAP {
            self.hist_u.remove(0);
            self.hist_y.remove(0);
        }
        self.hist_u.push(u.to_vec());
        self.hist_y.push(y.to_vec());
        let sample = HealthSample {
            residual,
            margin: residual / self.delta,
            saturation: self.saturation_frac(r),
            degraded: r.mode.is_some_and(|m| m != SupervisorMode::Primary),
            slo_burn: if r.hw_sense.slo.active {
                r.hw_sense.slo.p99_s / r.hw_sense.limits.latency_slo_s.max(1e-9)
            } else {
                0.0
            },
            bips_per_watt: r.hw_sense.outputs.perf
                / (r.hw_sense.outputs.p_big + r.hw_sense.outputs.p_little).max(1e-9),
        };
        self.monitor.observe(&sample)
    }

    /// Fraction of the 7 actuation components pinned at a grid rail this
    /// step — the classic symptom of a plant that drifted outside the
    /// model's envelope (the linear controller winds up against limits).
    fn saturation_frac(&self, r: &JournalRecord) -> f64 {
        let g = &self.grids;
        let at_rail =
            |v: f64, lo: f64, hi: f64| (v - lo).abs() < RAIL_EPS || (v - hi).abs() < RAIL_EPS;
        let pinned = [
            at_rail(r.hw_u.big_cores, g.big_cores.min(), g.big_cores.max()),
            at_rail(
                r.hw_u.little_cores,
                g.little_cores.min(),
                g.little_cores.max(),
            ),
            at_rail(r.hw_u.f_big, g.f_big.min(), g.f_big.max()),
            at_rail(r.hw_u.f_little, g.f_little.min(), g.f_little.max()),
            at_rail(r.os_u.threads_big, g.threads_big.min(), g.threads_big.max()),
            at_rail(r.os_u.packing_big, g.packing.min(), g.packing.max()),
            at_rail(r.os_u.packing_little, g.packing.min(), g.packing.max()),
        ]
        .iter()
        .filter(|&&p| p)
        .count();
        pinned as f64 / N_U as f64
    }

    fn normalized_input(&self, r: &JournalRecord) -> [f64; N_U] {
        let hw = self.ranges.norm_hw_inputs(&r.hw_u);
        let os = self.ranges.norm_os_inputs(&r.os_u);
        [hw[0], hw[1], hw[2], hw[3], os[0], os[1], os[2]]
    }

    /// `ŷ = C x + D u` against the current reference model.
    fn predict(&self, u: &[f64; N_U]) -> [f64; N_Y] {
        let c = self.model.c();
        let d = self.model.d();
        let mut out = [0.0; N_Y];
        for (i, o) in out.iter_mut().enumerate() {
            for (j, xj) in self.x.iter().enumerate() {
                *o += c[(i, j)] * xj;
            }
            for (j, uj) in u.iter().enumerate() {
                *o += d[(i, j)] * uj;
            }
        }
        out
    }

    /// `x ← A x + B u`.
    fn advance(&mut self, u: &[f64; N_U]) {
        let a = self.model.a();
        let b = self.model.b();
        let n = self.x.len();
        let mut next = vec![0.0; n];
        for (i, nx) in next.iter_mut().enumerate() {
            for (j, xj) in self.x.iter().enumerate() {
                *nx += a[(i, j)] * xj;
            }
            for (j, uj) in u.iter().enumerate() {
                *nx += b[(i, j)] * uj;
            }
        }
        self.x = next;
    }

    /// The retained normalized `(u, y)` history, oldest first — the
    /// training data for an online re-identification.
    pub fn history(&self) -> (&[Vec<f64>], &[Vec<f64>]) {
        (&self.hist_u, &self.hist_y)
    }

    /// Re-arms after a hot-swap: the detectors re-learn their baselines
    /// (holdoff per [`HealthConfig::rearm`]) and, when a refit produced a
    /// new plant model, the open-loop recursion restarts against it.
    pub fn rearm_after_swap(&mut self, refit: Option<StateSpace>) {
        if let Some(model) = refit {
            if model.n_inputs() == N_U && model.n_outputs() == N_Y {
                self.x = vec![0.0; model.order()];
                self.u_prev = None;
                self.bias = None;
                self.model = model;
            }
        }
        self.monitor.rearm();
    }

    /// Detector + aggregate statistics so far.
    pub fn stats(&self) -> HealthStats {
        self.monitor.stats()
    }

    /// Samples observed so far.
    pub fn samples(&self) -> u64 {
        self.monitor.samples()
    }

    /// Emits the run-end health gauges (`health.*`) to a recorder. Called
    /// by the runtime after the loop, and only when recording is enabled —
    /// never on the hot path.
    pub fn publish(&self, rec: &dyn Recorder) {
        let s = self.stats();
        rec.gauge_set("health.samples", s.samples as f64);
        rec.gauge_set("health.residual_mean", s.residual_mean);
        rec.gauge_set("health.margin_mean", s.margin_mean);
        rec.gauge_set("health.margin_recent", s.margin_recent);
        rec.gauge_set("health.saturation_duty", s.saturation_duty);
        rec.gauge_set("health.degraded_duty", s.degraded_duty);
        rec.gauge_set("health.slo_burn_mean", s.slo_burn_mean);
        rec.gauge_set("health.alarms", s.alarms as f64);
        if let Some(q) = s.bips_per_watt.quantile(0.5) {
            rec.gauge_set("health.bips_per_watt_p50", q);
        }
        if let Some(q) = s.bips_per_watt.quantile(0.99) {
            rec.gauge_set("health.bips_per_watt_p99", q);
        }
    }
}

/// Emits one `health.verdict` event for a non-healthy verdict. Healthy
/// steps are silent — the verdict stream is an exception log, not a
/// heartbeat. The caller gates on [`Recorder::enabled`].
pub fn emit_verdict(rec: &dyn Recorder, step: u64, verdict: HealthVerdict) {
    match verdict {
        HealthVerdict::Healthy => {}
        HealthVerdict::Drifting { score } => rec.event(
            "health.verdict",
            &[
                ("step", Value::U64(step)),
                ("verdict", Value::Str("drifting")),
                ("score", Value::F64(score)),
            ],
        ),
        HealthVerdict::PhaseChange { at_step } => rec.event(
            "health.verdict",
            &[
                ("step", Value::U64(step)),
                ("verdict", Value::Str("phase_change")),
                ("score", Value::F64(at_step as f64)),
            ],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controllers::{HwSense, OsSense};
    use crate::design::default_design;
    use crate::signals::{HwInputs, HwOutputs, Limits, OsInputs, OsOutputs, SloSense};

    fn record(step: u64, perf: f64, f_big: f64) -> JournalRecord {
        let hw_u = HwInputs {
            big_cores: 4.0,
            little_cores: 4.0,
            f_big,
            f_little: 1.0,
        };
        let os_u = OsInputs {
            threads_big: 4.0,
            packing_big: 1.0,
            packing_little: 1.0,
        };
        let outputs = HwOutputs {
            perf,
            p_big: 2.0,
            p_little: 0.2,
            temp: 60.0,
        };
        let hw_sense = HwSense {
            outputs,
            ext: os_u,
            current: hw_u,
            active_threads: 4,
            slo: SloSense::default(),
            limits: Limits::default(),
        };
        let os_sense = OsSense {
            outputs: OsOutputs {
                perf_little: perf * 0.3,
                perf_big: perf * 0.7,
                spare_diff: 0.0,
            },
            ext: hw_u,
            current: os_u,
            active_threads: 4,
            system: outputs,
            slo: SloSense::default(),
            limits: Limits::default(),
        };
        JournalRecord {
            step,
            time: step as f64 * 0.5,
            hw_sense,
            os_sense,
            hw_u,
            os_u,
            mode: Some(SupervisorMode::Primary),
            fault_events: Vec::new(),
        }
    }

    #[test]
    fn tap_is_deterministic_and_pure() {
        let design = default_design();
        let mut a = HealthTap::new(design, HealthConfig::default()).unwrap();
        let mut b = a.clone();
        for step in 0..200 {
            let r = record(step, 5.0 + (step % 7) as f64 * 0.1, 1.6);
            let va = a.observe(&r);
            let vb = b.observe(&r);
            assert_eq!(va, vb, "divergence at step {step}");
        }
        let (sa, sb) = (a.stats(), b.stats());
        assert_eq!(sa.samples, sb.samples);
        assert_eq!(sa.residual_mean.to_bits(), sb.residual_mean.to_bits());
    }

    #[test]
    fn saturation_counts_rail_pinned_components() {
        let design = default_design();
        let tap = HealthTap::new(design, HealthConfig::default()).unwrap();
        // f_big at the 2.0 GHz rail, both core counts at the 4-core rail,
        // packing at the 1.0 rail twice: 5 of 7 components pinned
        // (threads_big = 4 and f_little = 1.0 are interior on their grids).
        let r = record(0, 5.0, 2.0);
        let frac = tap.saturation_frac(&r);
        assert!((frac - 5.0 / 7.0).abs() < 1e-12, "got {frac}");
    }

    #[test]
    fn history_is_capped_and_ordered() {
        let design = default_design();
        let mut tap = HealthTap::new(design, HealthConfig::default()).unwrap();
        for step in 0..(REFIT_HISTORY_CAP as u64 + 50) {
            tap.observe(&record(step, 5.0, 1.6));
        }
        let (u, y) = tap.history();
        assert_eq!(u.len(), REFIT_HISTORY_CAP);
        assert_eq!(y.len(), REFIT_HISTORY_CAP);
        assert_eq!(u[0].len(), N_U);
        assert_eq!(y[0].len(), N_Y);
    }

    #[test]
    fn rearm_installs_a_shape_matched_model_only() {
        let design = default_design();
        let mut tap = HealthTap::new(design, HealthConfig::default()).unwrap();
        tap.observe(&record(0, 5.0, 1.6));
        // A wrong-shape model is ignored; the monitor still re-arms.
        let wrong = StateSpace::from_gain(yukta_linalg::Mat::identity(2), Some(0.5));
        tap.rearm_after_swap(Some(wrong));
        assert!(tap.u_prev.is_some(), "wrong-shape model must not reset");
        let right = design.hw_model_full.clone();
        tap.rearm_after_swap(Some(right));
        assert!(tap.u_prev.is_none(), "matched model restarts the recursion");
    }
}
