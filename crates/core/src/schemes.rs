//! The controller schemes of the evaluation (Table IV plus the LQG
//! arrangements of Section VI-B).

use serde::{Deserialize, Serialize};
use yukta_control::lqg::{LqgTracker, LqgWeights};
use yukta_linalg::Result;

use crate::controllers::heuristic::{
    CoordinatedHeuristicHw, CoordinatedHeuristicOs, DecoupledHeuristicHw, DecoupledHeuristicOs,
};
use crate::controllers::lqg_ctl::{LqgHwController, LqgOsController, MonolithicLqg};
use crate::controllers::ssv::{SsvHwController, SsvOsController};
use crate::controllers::{ControllerState, HwPolicy, OsPolicy};
use crate::design::Design;
use crate::optimizer::{HwOptimizer, OsOptimizer};
use crate::signals::Limits;

/// The two-layer controller schemes compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Table IV(a): HMP-style E×D-aware scheduler + safe-climb governor,
    /// coordinated through the shared interface. The paper's baseline.
    CoordinatedHeuristic,
    /// Table IV(b): round-robin scheduler + performance-governor hardware,
    /// no coordination.
    DecoupledHeuristic,
    /// Table IV(c): SSV hardware controller + the coordinated heuristic OS.
    YuktaHwSsvOsHeuristic,
    /// Table IV(d): SSV controllers in both layers — full Yukta.
    YuktaHwSsvOsSsv,
    /// Section VI-B: independent LQG controllers per layer (no external
    /// signals possible).
    DecoupledLqg,
    /// Section VI-B: a single LQG controller spanning both layers.
    MonolithicLqg,
}

impl Scheme {
    /// The paper's figure label for this scheme.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::CoordinatedHeuristic => "Coordinated heuristic",
            Scheme::DecoupledHeuristic => "Decoupled heuristic",
            Scheme::YuktaHwSsvOsHeuristic => "Yukta: HW SSV+OS heuristic",
            Scheme::YuktaHwSsvOsSsv => "Yukta: HW SSV+OS SSV",
            Scheme::DecoupledLqg => "Decoupled HW LQG+OS LQG",
            Scheme::MonolithicLqg => "Monolithic LQG",
        }
    }

    /// The Table IV / Section VI-B description.
    pub fn description(&self) -> &'static str {
        match self {
            Scheme::CoordinatedHeuristic => {
                "OS: scheduler with power and performance heuristics, using the number, \
                 type, and frequency of cores. HW: increases frequency and #cores while \
                 operation is safe, using the thread distribution to make decisions."
            }
            Scheme::DecoupledHeuristic => {
                "OS: round-robin assignment of threads to cores. HW: sets frequency and \
                 #cores to the maximum value; on a violation it reduces frequency first, \
                 then #cores."
            }
            Scheme::YuktaHwSsvOsHeuristic => {
                "OS: like the OS controller in Coordinated heuristic. HW: SSV design \
                 from Section IV-A."
            }
            Scheme::YuktaHwSsvOsSsv => {
                "OS: SSV design from Section IV-B. HW: SSV design from Section IV-A."
            }
            Scheme::DecoupledLqg => {
                "Independent LQG controllers in the hardware and OS layers; LQG cannot \
                 take external signals, so no coordination is possible."
            }
            Scheme::MonolithicLqg => {
                "A single LQG controller that manages both layers (the configuration of \
                 the ISCA'16 MIMO controller)."
            }
        }
    }

    /// The four schemes of Figure 9, in bar order.
    pub fn figure9() -> [Scheme; 4] {
        [
            Scheme::CoordinatedHeuristic,
            Scheme::DecoupledHeuristic,
            Scheme::YuktaHwSsvOsHeuristic,
            Scheme::YuktaHwSsvOsSsv,
        ]
    }

    /// The four schemes of Figures 12/13, in bar order.
    pub fn figure12() -> [Scheme; 4] {
        [
            Scheme::CoordinatedHeuristic,
            Scheme::DecoupledLqg,
            Scheme::MonolithicLqg,
            Scheme::YuktaHwSsvOsSsv,
        ]
    }

    /// Every scheme implemented.
    pub fn all() -> [Scheme; 6] {
        [
            Scheme::CoordinatedHeuristic,
            Scheme::DecoupledHeuristic,
            Scheme::YuktaHwSsvOsHeuristic,
            Scheme::YuktaHwSsvOsSsv,
            Scheme::DecoupledLqg,
            Scheme::MonolithicLqg,
        ]
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Instantiated controllers for one execution.
pub enum Controllers {
    /// Independent per-layer controllers (all schemes except monolithic).
    Split {
        /// Hardware-layer policy.
        hw: Box<dyn HwPolicy>,
        /// Software-layer policy.
        os: Box<dyn OsPolicy>,
    },
    /// One cross-layer controller.
    Monolithic(Box<MonolithicLqg>),
}

impl Controllers {
    /// A short label combining the layer controller names.
    pub fn label(&self) -> String {
        match self {
            Controllers::Split { hw, os } => format!("{}+{}", hw.name(), os.name()),
            Controllers::Monolithic(_) => "monolithic-lqg".to_string(),
        }
    }

    /// Clears all internal controller state in both layers (used by the
    /// supervisor when re-engaging after a faulty episode).
    pub fn reset(&mut self) {
        match self {
            Controllers::Split { hw, os } => {
                hw.reset();
                os.reset();
            }
            Controllers::Monolithic(m) => m.reset(),
        }
    }

    /// Snapshots both layers' controller state for a checkpoint.
    pub fn save_state(&self) -> ControllersState {
        match self {
            Controllers::Split { hw, os } => ControllersState::Split {
                hw: hw.save_state(),
                os: os.save_state(),
            },
            Controllers::Monolithic(m) => ControllersState::Monolithic(m.save_state()),
        }
    }

    /// Restores a snapshot taken by [`Controllers::save_state`] into a
    /// freshly instantiated copy of the same scheme. After a restore the
    /// controllers reproduce subsequent invocations bit-identically.
    ///
    /// # Errors
    ///
    /// [`yukta_linalg::Error::NoSolution`] if the snapshot's shape does
    /// not match this scheme's controllers.
    pub fn restore_state(&mut self, state: &ControllersState) -> Result<()> {
        match (self, state) {
            (Controllers::Split { hw, os }, ControllersState::Split { hw: sh, os: so }) => {
                hw.restore_state(sh)?;
                os.restore_state(so)
            }
            (Controllers::Monolithic(m), ControllersState::Monolithic(sm)) => m.restore_state(sm),
            _ => Err(yukta_linalg::Error::NoSolution {
                op: "controllers_restore_state",
                why: "split/monolithic shape mismatch",
            }),
        }
    }
}

/// A snapshot of a [`Controllers`] instance, mirroring its shape.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllersState {
    /// Snapshots of independent per-layer controllers.
    Split {
        /// Hardware-layer snapshot.
        hw: ControllerState,
        /// Software-layer snapshot.
        os: ControllerState,
    },
    /// Snapshot of one cross-layer controller.
    Monolithic(ControllerState),
}

impl Scheme {
    /// Builds fresh controller instances for one run.
    ///
    /// # Errors
    ///
    /// Propagates LQG design failures (Riccati infeasibility on the
    /// identified models).
    pub fn instantiate(&self, design: &Design, limits: Limits) -> Result<Controllers> {
        let lqg_hw_weights = LqgWeights {
            qy: 1.0,
            qi: 0.5,
            ru: 1.0, // comparable to the SSV hardware input weights
            qw: 0.1,
            rv: 0.01,
        };
        let lqg_os_weights = LqgWeights {
            ru: 2.0, // comparable to the SSV software input weights
            ..lqg_hw_weights
        };
        Ok(match self {
            Scheme::CoordinatedHeuristic => Controllers::Split {
                hw: Box::new(CoordinatedHeuristicHw::new()),
                os: Box::new(CoordinatedHeuristicOs::new()),
            },
            Scheme::DecoupledHeuristic => Controllers::Split {
                hw: Box::new(DecoupledHeuristicHw::new()),
                os: Box::new(DecoupledHeuristicOs::new()),
            },
            Scheme::YuktaHwSsvOsHeuristic => Controllers::Split {
                hw: Box::new(SsvHwController::new(
                    &design.hw_ssv,
                    HwOptimizer::new(limits),
                )),
                os: Box::new(CoordinatedHeuristicOs::new()),
            },
            Scheme::YuktaHwSsvOsSsv => Controllers::Split {
                hw: Box::new(SsvHwController::new(
                    &design.hw_ssv,
                    HwOptimizer::new(limits),
                )),
                os: Box::new(SsvOsController::new(&design.os_ssv, OsOptimizer::new())),
            },
            Scheme::DecoupledLqg => Controllers::Split {
                hw: Box::new(LqgHwController::new(
                    LqgTracker::design(&design.hw_model_solo, lqg_hw_weights)?,
                    HwOptimizer::new(limits),
                )),
                os: Box::new(LqgOsController::new(
                    LqgTracker::design(&design.os_model_solo, lqg_os_weights)?,
                    OsOptimizer::new(),
                )),
            },
            Scheme::MonolithicLqg => Controllers::Monolithic(Box::new(MonolithicLqg::new(
                LqgTracker::design(&design.mono_model, lqg_hw_weights)?,
                HwOptimizer::new(limits),
                OsOptimizer::new(),
            ))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(
            Scheme::CoordinatedHeuristic.label(),
            "Coordinated heuristic"
        );
        assert_eq!(Scheme::YuktaHwSsvOsSsv.label(), "Yukta: HW SSV+OS SSV");
        assert_eq!(Scheme::MonolithicLqg.label(), "Monolithic LQG");
    }

    #[test]
    fn figure_orders() {
        assert_eq!(Scheme::figure9()[0], Scheme::CoordinatedHeuristic);
        assert_eq!(Scheme::figure9()[3], Scheme::YuktaHwSsvOsSsv);
        assert_eq!(Scheme::figure12()[2], Scheme::MonolithicLqg);
        assert_eq!(Scheme::all().len(), 6);
    }

    #[test]
    fn descriptions_mention_key_mechanisms() {
        assert!(
            Scheme::DecoupledHeuristic
                .description()
                .contains("round-robin")
        );
        assert!(Scheme::CoordinatedHeuristic.description().contains("safe"));
        assert!(Scheme::YuktaHwSsvOsSsv.description().contains("SSV"));
    }
}
