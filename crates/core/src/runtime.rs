//! The two-layer runtime: wires controllers to the simulated board and a
//! workload, invoking each controller every 500 ms exactly as the
//! prototype's privileged processes did.

use yukta_board::{Actuation, Board, BoardConfig, Cluster, FaultPlan, Placement};
use yukta_linalg::Result;
use yukta_workloads::{Workload, WorkloadRun};

use crate::controllers::{HwSense, OsSense};
use crate::design::{Design, default_design};
use crate::metrics::{FaultReport, Metrics, Report, Trace, TraceSample};
use crate::schemes::{Controllers, Scheme};
use crate::signals::{HwInputs, HwOutputs, Limits, OsInputs, OsOutputs, spare_capacity};
use crate::supervisor::{Supervisor, SupervisorConfig};

/// The invocation engine of one run: either the controllers directly (the
/// paper's experiments) or the fault-containment supervisor wrapping them.
enum Engine {
    Raw(Controllers),
    Supervised(Box<Supervisor>),
}

impl Engine {
    fn invoke(&mut self, hw_sense: &HwSense, os_sense: &OsSense) -> Result<(HwInputs, OsInputs)> {
        match self {
            Engine::Raw(c) => match c {
                Controllers::Split { hw, os } => Ok((hw.invoke(hw_sense)?, os.invoke(os_sense)?)),
                Controllers::Monolithic(m) => m.invoke(hw_sense, os_sense),
            },
            Engine::Supervised(s) => Ok(s.step(hw_sense, os_sense)),
        }
    }
}

/// Options controlling one experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Wall-clock cap on the simulated execution (s); runs that exceed it
    /// are reported with `completed = false`.
    pub timeout_s: f64,
    /// Constraint limits (defaults to the paper's 0.33 W / 3.3 W / 79 °C).
    pub limits: Limits,
    /// Board RNG seed override.
    pub board_seed: Option<u64>,
    /// Whether to keep the full 500 ms trace in the report.
    pub keep_trace: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            timeout_s: 1200.0,
            limits: Limits::default(),
            board_seed: None,
            keep_trace: true,
        }
    }
}

/// An experiment: a scheme plus the design artifacts it deploys.
pub struct Experiment {
    scheme: Scheme,
    design: Design,
    options: RunOptions,
}

impl Experiment {
    /// Creates an experiment against the cached default design.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid schemes; kept fallible for parity
    /// with [`Experiment::run`] call sites.
    pub fn new(scheme: Scheme) -> Result<Self> {
        Ok(Experiment {
            scheme,
            design: default_design().clone(),
            options: RunOptions::default(),
        })
    }

    /// Creates an experiment against an explicit design (sensitivity
    /// studies).
    pub fn with_design(scheme: Scheme, design: Design) -> Self {
        Experiment {
            scheme,
            design,
            options: RunOptions::default(),
        }
    }

    /// Overrides the run options.
    pub fn with_options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// The scheme under test.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The design in use.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Runs the workload to completion under this scheme.
    ///
    /// # Errors
    ///
    /// Propagates controller-instantiation failures.
    pub fn run(&self, workload: &Workload) -> Result<Report> {
        let controllers = self.scheme.instantiate(&self.design, self.options.limits)?;
        self.run_with_controllers(workload, controllers)
    }

    /// Runs with externally supplied controllers (used by the fixed-target
    /// and sensitivity experiments).
    ///
    /// # Errors
    ///
    /// Propagates typed numerical errors from controller invocations.
    pub fn run_with_controllers(
        &self,
        workload: &Workload,
        controllers: Controllers,
    ) -> Result<Report> {
        self.execute(workload, Engine::Raw(controllers), None)
    }

    /// Runs the workload under the fault-containment supervisor, optionally
    /// with a fault-injection plan corrupting the board interface.
    ///
    /// With `plan = None` (or a zero-severity plan) the supervisor is
    /// transparent and the resulting metrics are bit-identical to
    /// [`Experiment::run`].
    ///
    /// # Errors
    ///
    /// Propagates controller-instantiation failures; the supervised loop
    /// itself never returns a controller error.
    pub fn run_supervised(
        &self,
        workload: &Workload,
        sup_cfg: SupervisorConfig,
        plan: Option<FaultPlan>,
    ) -> Result<Report> {
        let controllers = self.scheme.instantiate(&self.design, self.options.limits)?;
        self.run_supervised_with_controllers(workload, controllers, sup_cfg, plan)
    }

    /// [`Experiment::run_supervised`] with externally supplied controllers
    /// (property tests use cheap hand-built controller instances).
    ///
    /// # Errors
    ///
    /// Infallible at present; fallible signature for uniformity.
    pub fn run_supervised_with_controllers(
        &self,
        workload: &Workload,
        controllers: Controllers,
        sup_cfg: SupervisorConfig,
        plan: Option<FaultPlan>,
    ) -> Result<Report> {
        let sup = Box::new(Supervisor::new(controllers, sup_cfg));
        self.execute(workload, Engine::Supervised(sup), plan)
    }

    fn execute(
        &self,
        workload: &Workload,
        mut engine: Engine,
        plan: Option<FaultPlan>,
    ) -> Result<Report> {
        let mut cfg = BoardConfig::odroid_xu3();
        if let Some(seed) = self.options.board_seed {
            cfg.seed = seed;
        }
        let dt = cfg.dt;
        let steps_per_invocation = (0.5 / dt).round() as usize;
        let mut board = match &plan {
            Some(p) => Board::with_faults(cfg, p.clone()),
            None => Board::new(cfg),
        };
        let mut run = WorkloadRun::new(workload);
        let mut trace = Trace::new();
        // Windowed BIPS state.
        let mut last_instr_big = 0.0;
        let mut last_instr_little = 0.0;
        let limits = self.options.limits;
        let mut completed = false;

        'outer: loop {
            // One controller period of plant evolution.
            for _ in 0..steps_per_invocation {
                let loads = run.loads();
                let rep = board.step(&loads);
                run.advance(&rep.thread_progress);
                if run.is_done() {
                    completed = true;
                    break 'outer;
                }
                if board.time() >= self.options.timeout_s {
                    break 'outer;
                }
            }
            // Gather both layers' sensor views.
            let st = board.state();
            let now = board.time();
            let ib = board.instructions(Cluster::Big);
            let il = board.instructions(Cluster::Little);
            let bips_big = (ib - last_instr_big) / 0.5;
            let bips_little = (il - last_instr_little) / 0.5;
            last_instr_big = ib;
            last_instr_little = il;
            let n_active = run.active_threads();
            let tb_actual = st.placement.threads_big.min(n_active);
            let hw_outputs = HwOutputs {
                perf: bips_big + bips_little,
                p_big: board.read_power(Cluster::Big),
                p_little: board.read_power(Cluster::Little),
                temp: board.read_temp(),
            };
            let os_outputs = OsOutputs {
                perf_little: bips_little,
                perf_big: bips_big,
                spare_diff: spare_capacity(st.big_cores, tb_actual)
                    - spare_capacity(st.little_cores, n_active - tb_actual),
            };
            let current_hw = HwInputs {
                big_cores: st.big_cores as f64,
                little_cores: st.little_cores as f64,
                f_big: st.f_big,
                f_little: st.f_little,
            };
            let current_os = OsInputs {
                threads_big: tb_actual as f64,
                packing_big: st.placement.packing_big,
                packing_little: st.placement.packing_little,
            };
            let hw_sense = HwSense {
                outputs: hw_outputs,
                ext: current_os,
                current: current_hw,
                active_threads: n_active,
                limits,
            };
            let os_sense = OsSense {
                outputs: os_outputs,
                ext: current_hw,
                current: current_os,
                active_threads: n_active,
                system: hw_outputs,
                limits,
            };
            // Invoke the controllers (both see the pre-invocation state,
            // like the prototype's independent processes).
            let (hw_u, os_u) = engine.invoke(&hw_sense, &os_sense)?;
            board.actuate(&Actuation {
                f_big: Some(hw_u.f_big),
                f_little: Some(hw_u.f_little),
                big_cores: Some(hw_u.big_cores.round() as usize),
                little_cores: Some(hw_u.little_cores.round() as usize),
                placement: Some(Placement {
                    threads_big: os_u.threads_big.round() as usize,
                    packing_big: os_u.packing_big,
                    packing_little: os_u.packing_little,
                }),
            });
            if self.options.keep_trace {
                trace.push(TraceSample {
                    time: now,
                    p_big: hw_outputs.p_big,
                    p_little: hw_outputs.p_little,
                    temp: st.t_hot,
                    bips: hw_outputs.perf,
                    bips_big,
                    bips_little,
                    f_big: st.f_big,
                    f_little: st.f_little,
                    big_cores: st.big_cores,
                    little_cores: st.little_cores,
                    threads_big: tb_actual,
                    active_threads: n_active,
                });
            }
        }
        let supervisor = match &engine {
            Engine::Supervised(s) => Some(s.stats()),
            Engine::Raw(_) => None,
        };
        let faults = plan.as_ref().map(|p| FaultReport {
            seed: p.seed,
            severity: p.severity,
            stats: board.fault_stats().unwrap_or_default(),
            trace: board.fault_trace().unwrap_or_default().to_vec(),
        });
        Ok(Report {
            workload: workload.name.clone(),
            scheme: self.scheme.label().to_string(),
            metrics: Metrics {
                energy_joules: board.energy(),
                delay_seconds: board.time(),
                completed,
            },
            trace,
            supervisor,
            faults,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yukta_workloads::catalog;

    fn quick_options() -> RunOptions {
        RunOptions {
            timeout_s: 400.0,
            ..Default::default()
        }
    }

    #[test]
    fn coordinated_heuristic_completes_blackscholes() {
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        let rep = exp.run(&catalog::parsec::blackscholes()).unwrap();
        assert!(
            rep.metrics.completed,
            "timed out at {}",
            rep.metrics.delay_seconds
        );
        assert!(rep.metrics.energy_joules > 10.0);
        assert!(rep.metrics.delay_seconds > 10.0);
        assert!(!rep.trace.samples.is_empty());
    }

    #[test]
    fn decoupled_heuristic_is_worse_than_coordinated() {
        let wl = catalog::spec::mcf();
        let coord = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options())
            .run(&wl)
            .unwrap();
        let dec = Experiment::new(Scheme::DecoupledHeuristic)
            .unwrap()
            .with_options(quick_options())
            .run(&wl)
            .unwrap();
        assert!(coord.metrics.completed && dec.metrics.completed);
        assert!(
            dec.metrics.exd() > coord.metrics.exd() * 0.9,
            "decoupled {} vs coordinated {}",
            dec.metrics.exd(),
            coord.metrics.exd()
        );
    }

    #[test]
    #[ignore = "pre-existing: SSV pair finishes blackscholes at ~568s (timeout 400s) \
                with ExD 3.2x coordinated; needs synthesis-quality work, see ROADMAP open items"]
    fn yukta_ssv_ssv_is_competitive_with_coordinated_heuristic() {
        // On this simulator the hand-built coordinated heuristic is an
        // unusually strong baseline (see EXPERIMENTS.md); the SSV pair
        // must complete and stay within a modest factor of it.
        let wl = catalog::parsec::blackscholes();
        let coord = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options())
            .run(&wl)
            .unwrap();
        let yukta = Experiment::new(Scheme::YuktaHwSsvOsSsv)
            .unwrap()
            .with_options(quick_options())
            .run(&wl)
            .unwrap();
        assert!(yukta.metrics.completed);
        assert!(
            yukta.metrics.exd() < coord.metrics.exd() * 1.6,
            "yukta {} vs coordinated {}",
            yukta.metrics.exd(),
            coord.metrics.exd()
        );
    }

    #[test]
    fn traces_respect_limits_on_average_for_ssv() {
        let exp = Experiment::new(Scheme::YuktaHwSsvOsSsv)
            .unwrap()
            .with_options(quick_options());
        let rep = exp.run(&catalog::parsec::blackscholes()).unwrap();
        // Transients may cross the limit, but sustained operation must not.
        let mean_p = rep.trace.mean_of(|s| s.p_big);
        assert!(mean_p < 3.5, "mean big power {mean_p}");
        let mean_t = rep.trace.mean_of(|s| s.temp);
        assert!(mean_t < 80.0, "mean temperature {mean_t}");
    }

    #[test]
    fn zero_severity_supervised_run_is_bit_identical_to_baseline() {
        let wl = catalog::parsec::blackscholes();
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        let base = exp.run(&wl).unwrap();
        let sup = exp
            .run_supervised(
                &wl,
                SupervisorConfig::default(),
                Some(FaultPlan::uniform(7, 0.0)),
            )
            .unwrap();
        assert_eq!(
            base.metrics.energy_joules.to_bits(),
            sup.metrics.energy_joules.to_bits(),
            "energy differs: {} vs {}",
            base.metrics.energy_joules,
            sup.metrics.energy_joules
        );
        assert_eq!(
            base.metrics.delay_seconds.to_bits(),
            sup.metrics.delay_seconds.to_bits()
        );
        assert_eq!(base.metrics.completed, sup.metrics.completed);
        let st = sup.supervisor.expect("supervised run carries stats");
        assert_eq!(st.fallback_entries, 0, "transparent supervisor demoted");
        assert_eq!(st.degraded_invocations, 0);
        assert_eq!(st.sensor_faults_seen(), 0);
        let fr = sup.faults.expect("plan recorded");
        assert_eq!(fr.stats.total(), 0, "zero severity must inject nothing");
        assert!(fr.trace.is_empty());
    }

    #[test]
    fn supervised_run_survives_full_severity_faults() {
        let wl = catalog::spec::gamess();
        let exp = Experiment::new(Scheme::MonolithicLqg)
            .unwrap()
            .with_options(quick_options());
        let rep = exp
            .run_supervised(
                &wl,
                SupervisorConfig::default(),
                Some(FaultPlan::uniform(11, 1.0)),
            )
            .unwrap();
        assert!(rep.metrics.energy_joules.is_finite());
        assert!(rep.metrics.delay_seconds > 0.0);
        let st = rep.supervisor.unwrap();
        let fr = rep.faults.unwrap();
        assert!(fr.stats.total() > 0, "severity 1.0 must inject faults");
        assert!(
            st.sensor_faults_seen() + st.controller_errors > 0,
            "supervisor saw none of the injected faults"
        );
    }

    #[test]
    fn identical_seed_and_plan_reproduce_report_bit_for_bit() {
        let wl = catalog::spec::mcf();
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        let plan = FaultPlan::uniform(42, 0.6);
        let a = exp
            .run_supervised(&wl, SupervisorConfig::default(), Some(plan.clone()))
            .unwrap();
        let b = exp
            .run_supervised(&wl, SupervisorConfig::default(), Some(plan))
            .unwrap();
        assert_eq!(
            a.metrics.energy_joules.to_bits(),
            b.metrics.energy_joules.to_bits()
        );
        assert_eq!(
            a.metrics.delay_seconds.to_bits(),
            b.metrics.delay_seconds.to_bits()
        );
        assert_eq!(a.supervisor, b.supervisor);
        let (fa, fb) = (a.faults.unwrap(), b.faults.unwrap());
        assert_eq!(fa.stats, fb.stats);
        assert_eq!(fa.trace.len(), fb.trace.len());
        assert!(!fa.trace.is_empty(), "severity 0.6 should inject something");
        for (x, y) in fa.trace.iter().zip(&fb.trace) {
            assert_eq!(x.time.to_bits(), y.time.to_bits());
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.channel, y.channel);
            assert_eq!(x.value.to_bits(), y.value.to_bits());
        }
        // The per-sample traces agree bit-for-bit as well.
        assert_eq!(a.trace.samples.len(), b.trace.samples.len());
        for (x, y) in a.trace.samples.iter().zip(&b.trace.samples) {
            assert_eq!(x.time.to_bits(), y.time.to_bits());
            assert_eq!(x.p_big.to_bits(), y.p_big.to_bits());
            assert_eq!(x.temp.to_bits(), y.temp.to_bits());
            assert_eq!(x.bips.to_bits(), y.bips.to_bits());
            assert_eq!(x.f_big.to_bits(), y.f_big.to_bits());
            assert_eq!(x.threads_big, y.threads_big);
        }
    }

    #[test]
    fn monolithic_lqg_runs() {
        let exp = Experiment::new(Scheme::MonolithicLqg)
            .unwrap()
            .with_options(quick_options());
        let rep = exp.run(&catalog::spec::gamess()).unwrap();
        assert!(rep.metrics.delay_seconds > 0.0);
    }
}
