//! The two-layer runtime: wires controllers to the simulated board and a
//! workload, invoking each controller every 500 ms exactly as the
//! prototype's privileged processes did.
//!
//! Besides the plain run paths, the runtime is *crash-tolerant*
//! (DESIGN.md §11): [`Experiment::run_recoverable`] journals every
//! invocation into a [`Journal`], checkpoints the complete resumable state
//! periodically, injects controller-process crashes from the fault plan
//! ([`yukta_board::FaultKind::Crash`]), and recovers by restoring the
//! latest checkpoint and replaying the journal suffix — bit-identically to
//! a run that never crashed.

use std::panic::{AssertUnwindSafe, catch_unwind, resume_unwind};
use std::sync::Arc;
use std::time::Instant;

use yukta_board::{
    Actuation, Board, BoardConfig, Cluster, FaultPlan, Placement, QueueConfig, RequestQueue,
};
use yukta_linalg::{Error, Result};
use yukta_obs::{ObsHandle, Recorder, Value};
use yukta_workloads::{Traffic, TrafficConfig, Workload, WorkloadRun};

use yukta_control::sysid::{fit_arx, validation_residual};
use yukta_obs::health::{HealthConfig, HealthStats, HealthVerdict};

use crate::controllers::{HwSense, OsSense};
use crate::design::{Design, default_design};
use crate::health::{HealthTap, emit_verdict};
use crate::metrics::{ComputeStats, FaultReport, Metrics, Report, SloReport, Trace, TraceSample};
use crate::modes::{Knob, ModeAutomaton, ModeConfig, ModeSnapshot, TransitionRecord, level_label};
use crate::recorder::{Journal, JournalRecord, ReplayOutcome, replay_with};
use crate::schemes::{Controllers, ControllersState, Scheme};
use crate::signals::{HwInputs, HwOutputs, Limits, OsInputs, OsOutputs, SloSense, spare_capacity};
use crate::supervisor::{Supervisor, SupervisorConfig, SupervisorMode, SupervisorState};

/// The invocation engine of one run: either the controllers directly (the
/// paper's experiments) or the fault-containment supervisor wrapping them.
/// Both shapes drive the checked [`ModeAutomaton`] — the supervisor owns
/// one internally; the raw engine carries its own so even unsupervised
/// runs assert the no-actuation-gap and single-writer-per-knob invariants
/// and route swap/recovery through the same protocol.
enum Engine {
    Raw { c: Controllers, auto: ModeAutomaton },
    Supervised(Box<Supervisor>),
}

/// A snapshot of an [`Engine`], mirroring its shape.
enum EngineState {
    Raw {
        c: ControllersState,
        auto: ModeSnapshot,
    },
    Supervised(Box<SupervisorState>),
}

impl Engine {
    fn invoke(&mut self, hw_sense: &HwSense, os_sense: &OsSense) -> Result<(HwInputs, OsInputs)> {
        match self {
            Engine::Raw { c, auto } => {
                auto.begin_invocation();
                let out = (|| match c {
                    Controllers::Split { hw, os } => {
                        Ok((hw.invoke(hw_sense)?, os.invoke(os_sense)?))
                    }
                    Controllers::Monolithic(m) => m.invoke(hw_sense, os_sense),
                })();
                match out {
                    Ok(u) => {
                        // The raw controllers are the single writer of all
                        // three knobs every step.
                        for k in Knob::ALL {
                            auto.claim(k, "raw");
                        }
                        auto.end_invocation();
                        Ok(u)
                    }
                    Err(e) => {
                        // A typed error terminates the run with the error
                        // instead of actuating: close the bracket without
                        // the gap check so the abort is not a violation.
                        auto.abort_invocation();
                        Err(e)
                    }
                }
            }
            Engine::Supervised(s) => Ok(s.step(hw_sense, os_sense)),
        }
    }

    /// The supervisor mode serving invocations (`None` for raw engines).
    fn mode(&self) -> Option<SupervisorMode> {
        match self {
            Engine::Raw { .. } => None,
            Engine::Supervised(s) => Some(s.mode()),
        }
    }

    /// The admission shed fraction commanded this invocation. Raw engines
    /// have no overload governor and never shed.
    fn shed_frac(&self) -> f64 {
        match self {
            Engine::Raw { .. } => 0.0,
            Engine::Supervised(s) => s.shed_frac(),
        }
    }

    /// Invariant violations recorded by the engine's mode automaton.
    fn violations(&self) -> u64 {
        match self {
            Engine::Raw { auto, .. } => auto.violations(),
            Engine::Supervised(s) => s.violations(),
        }
    }

    /// Drains the automaton's transition log for telemetry.
    fn drain_transitions(&mut self) -> Vec<TransitionRecord> {
        match self {
            Engine::Raw { auto, .. } => auto.drain_transitions(),
            Engine::Supervised(s) => s.drain_transitions(),
        }
    }

    /// Enters the swap-pending window (the crash-vulnerable interval
    /// between requesting a replacement and committing it).
    fn request_swap(&mut self) {
        match self {
            Engine::Raw { auto, .. } => auto.request_swap(),
            Engine::Supervised(s) => s.request_swap(),
        }
    }

    /// Marks the start of a crash-recovery replay.
    fn begin_recovery(&mut self) {
        match self {
            Engine::Raw { auto, .. } => auto.begin_recovery(),
            Engine::Supervised(s) => s.begin_recovery(),
        }
    }

    /// Marks the end of a crash-recovery replay.
    fn end_recovery(&mut self) {
        match self {
            Engine::Raw { auto, .. } => auto.end_recovery(),
            Engine::Supervised(s) => s.end_recovery(),
        }
    }

    fn save_state(&self) -> EngineState {
        match self {
            Engine::Raw { c, auto } => EngineState::Raw {
                c: c.save_state(),
                auto: auto.snapshot(),
            },
            Engine::Supervised(s) => EngineState::Supervised(Box::new(s.save_state())),
        }
    }

    fn restore_state(&mut self, state: &EngineState) -> Result<()> {
        match (self, state) {
            (Engine::Raw { c, auto }, EngineState::Raw { c: cs, auto: snap }) => {
                c.restore_state(cs)?;
                auto.restore(snap);
                Ok(())
            }
            (Engine::Supervised(sup), EngineState::Supervised(s)) => sup.restore_state(s),
            _ => Err(Error::NoSolution {
                op: "engine_restore_state",
                why: "raw/supervised shape mismatch",
            }),
        }
    }

    /// Commits a hot-swap of the serving controllers for a freshly
    /// synthesized replacement (adaptive resynthesis, DESIGN.md §13),
    /// routed through the automaton's request→commit protocol (a direct
    /// call is an atomic request+commit). State transfers bumplessly when
    /// the replacement has the same shape; otherwise it starts from reset.
    /// Returns `true` when the transfer was bumpless.
    fn swap_primary(&mut self, mut next: Controllers) -> bool {
        match self {
            Engine::Raw { c, auto } => {
                if !auto.swap_pending() {
                    auto.request_swap();
                }
                let saved = c.save_state();
                let bumpless = next.restore_state(&saved).is_ok();
                if !bumpless {
                    next.reset();
                }
                *c = next;
                auto.commit_swap();
                bumpless
            }
            Engine::Supervised(s) => s.swap_primary(next),
        }
    }
}

/// Telemetry label for an engine mode (`None` = raw engine, no supervisor).
fn mode_label(mode: Option<SupervisorMode>) -> &'static str {
    match mode {
        None => "raw",
        Some(level) => level_label(level),
    }
}

/// The panic payload of an injected controller-process crash
/// ([`yukta_board::FaultKind::Crash`]). Thrown inside the runtime loop via
/// [`std::panic::panic_any`] and caught by
/// [`Experiment::run_recoverable`]'s `catch_unwind`; any other panic is a
/// real bug and is re-raised.
#[derive(Debug, Clone, Copy)]
pub struct InjectedCrash {
    /// Invocation index at which the crash fired.
    pub step: u64,
}

/// Options controlling one experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Wall-clock cap on the simulated execution (s); runs that exceed it
    /// are reported with `completed = false`.
    pub timeout_s: f64,
    /// Constraint limits (defaults to the paper's 0.33 W / 3.3 W / 79 °C).
    pub limits: Limits,
    /// Board RNG seed override.
    pub board_seed: Option<u64>,
    /// Whether to keep the full 500 ms trace in the report.
    pub keep_trace: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            timeout_s: 1200.0,
            limits: Limits::default(),
            board_seed: None,
            keep_trace: true,
        }
    }
}

/// Options controlling the crash-tolerance machinery of
/// [`Experiment::run_recoverable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryOptions {
    /// Checkpoint every this many controller invocations (clamped to ≥ 1).
    pub checkpoint_interval: u64,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            checkpoint_interval: 20,
        }
    }
}

/// What the crash-tolerance machinery did during one recoverable run.
/// Reported out-of-band so the recovered [`Report`] stays bit-identical to
/// an uninterrupted run of the same seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Injected crashes that fired.
    pub crashes: u64,
    /// Successful recoveries (always equals `crashes` on success).
    pub recoveries: u64,
    /// Checkpoints taken (including the initial step-0 checkpoint).
    pub checkpoints: u64,
    /// Journal records replayed across all recoveries.
    pub replayed_records: u64,
    /// Replayed invocations that failed to reproduce the journaled record
    /// bit-for-bit. Must be zero for a deterministic stack.
    pub replay_divergences: u64,
    /// Mode-automaton invariant violations observed by the engine over the
    /// whole run (actuation gaps, dual writers, flapping, illegal
    /// swap/recovery events). Must be zero for a correct stack.
    pub invariant_violations: u64,
}

/// A mid-run controller hot-swap, specified by recipe so recovery can
/// rebuild the replacement deterministically after a crash (a heap-only
/// controller instance cannot be re-created from a checkpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapSpec {
    /// Invocation index just before which the swap commits.
    pub at_step: u64,
    /// Scheme to instantiate as the replacement; `None` re-instantiates
    /// the experiment's own scheme (the zero-change resynthesis case).
    pub scheme: Option<Scheme>,
}

/// Request-serving configuration of a run: an open-loop arrival process
/// feeding a bounded admission queue in front of the plant, with tail
/// latency observed back into both controllers' senses as [`SloSense`]
/// and the SLO bound taken from [`Limits::latency_slo_s`]. Optionally an
/// external frequency cap throttles the big cluster for the whole run —
/// the destructive-interference case where an outside actor (thermal
/// daemon, power capper) shrinks capacity while the OS layer scales up.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServingSpec {
    /// Open-loop arrival process (pattern, rate, load factor, seed).
    pub traffic: TrafficConfig,
    /// Admission queue (backlog cap, timeout, stats window).
    pub queue: QueueConfig,
    /// External big-cluster frequency cap (GHz), strictly a capper on top
    /// of whatever the controllers command (`None` = no interference).
    pub ext_cap_f_big: Option<f64>,
}

impl ServingSpec {
    /// Rejects non-finite/degenerate traffic, queue, SLO-bound, and cap
    /// parameters with typed errors before a run starts.
    ///
    /// # Errors
    ///
    /// [`yukta_linalg::Error::NoSolution`] naming the offending group.
    pub fn validate(&self, limits: &Limits) -> Result<()> {
        if self.traffic.validate().is_err() {
            return Err(Error::NoSolution {
                op: "serving_spec",
                why: "invalid traffic config (see TrafficConfig::validate)",
            });
        }
        if self.queue.validate().is_err() {
            return Err(Error::NoSolution {
                op: "serving_spec",
                why: "invalid queue config (see QueueConfig::validate)",
            });
        }
        if !(limits.latency_slo_s.is_finite() && limits.latency_slo_s > 0.0) {
            return Err(Error::NoSolution {
                op: "serving_spec",
                why: "latency SLO bound must be finite and positive",
            });
        }
        if let Some(cap) = self.ext_cap_f_big {
            if !(cap.is_finite() && cap > 0.0) {
                return Err(Error::NoSolution {
                    op: "serving_spec",
                    why: "external frequency cap must be finite and positive",
                });
            }
        }
        Ok(())
    }
}

/// The composed run configuration of [`Experiment::run_unified`]: any mix
/// of supervision, fault injection, one mid-run hot-swap, crash recovery,
/// and request serving, all driven through the checked mode automaton.
#[derive(Debug, Clone, Default)]
pub struct UnifiedOptions {
    /// Wrap the controllers in the fault-containment supervisor
    /// (validated via [`SupervisorConfig::validate`]).
    pub sup_cfg: Option<SupervisorConfig>,
    /// Fault-injection plan corrupting the board interface; its crash
    /// points fire only when `recovery` is enabled.
    pub plan: Option<FaultPlan>,
    /// One mid-run controller hot-swap.
    pub swap: Option<SwapSpec>,
    /// Enable journaling + checkpoint/restore crash tolerance.
    pub recovery: Option<RecoveryOptions>,
    /// Attach a request-serving layer (validated via
    /// [`ServingSpec::validate`]). `None` keeps the run a pure batch
    /// execution, bit-identical to the pre-serving runtime.
    pub serving: Option<ServingSpec>,
}

/// Configuration of [`Experiment::run_adaptive`]: a supervised run whose
/// health detectors drive re-identification and controller hot-swaps.
#[derive(Debug, Clone)]
pub struct AdaptiveOptions {
    /// Supervisor configuration (validated via
    /// [`SupervisorConfig::validate`]).
    pub sup_cfg: SupervisorConfig,
    /// Fault-injection plan corrupting the board interface (crash points
    /// are not fired on this path).
    pub plan: Option<FaultPlan>,
    /// Health monitor configuration (validated via
    /// [`HealthConfig::validate`]).
    pub health: HealthConfig,
    /// Scheme serving at the start of the run; `None` starts on the
    /// experiment's own scheme (each swap always installs the
    /// experiment's scheme).
    pub initial: Option<Scheme>,
    /// Cap on detector-triggered hot-swaps for the whole run.
    pub max_swaps: u32,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            sup_cfg: SupervisorConfig::default(),
            plan: None,
            health: HealthConfig::default(),
            initial: None,
            max_swaps: 1,
        }
    }
}

/// One completed observe → detect → re-identify → hot-swap cycle of
/// [`Experiment::run_adaptive`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapCycle {
    /// Invocation whose verdict fired the detector.
    pub detect_step: u64,
    /// Invocation just before which the replacement committed (always the
    /// one after `detect_step` — the swap lands in the next period).
    pub swap_step: u64,
    /// Worst-output relative RMS residual of the online refit on its own
    /// training window (−1.0 when the regression failed and the swap
    /// proceeded against the original model).
    pub fit_residual: f64,
    /// Whether the controller state transferred bumplessly.
    pub bumpless: bool,
}

/// The outcome of [`Experiment::run_adaptive`].
#[derive(Debug)]
pub struct AdaptiveRun {
    /// The run's report.
    pub report: Report,
    /// Health-monitor aggregates over the whole run.
    pub health: HealthStats,
    /// Detector-triggered swap cycles, in order.
    pub cycles: Vec<SwapCycle>,
    /// Mode-automaton invariant violations observed by the engine. Must
    /// be zero: every swap flows through the request→commit protocol.
    pub invariant_violations: u64,
}

/// The outcome of [`Experiment::run_recoverable`].
#[derive(Debug)]
pub struct RecoveredRun {
    /// The run's report — bit-identical to an uninterrupted run.
    pub report: Report,
    /// The complete flight-recorder journal of the run.
    pub journal: Journal,
    /// Crash/recovery counters.
    pub recovery: RecoveryReport,
}

/// The complete resumable state of a run between controller invocations:
/// the board (plant, sensors, TMU, fault injector, RNGs), the workload
/// position, the accumulated trace, and the windowed-BIPS bookkeeping.
#[derive(Clone)]
struct RunState {
    board: Board,
    run: WorkloadRun,
    trace: Trace,
    steps_per_invocation: usize,
    last_instr_big: f64,
    last_instr_little: f64,
    completed: bool,
    done: bool,
    /// Completed controller invocations so far.
    step: u64,
    /// Length of the board's fault trace already attributed to journal
    /// records (the next record carries the delta).
    fault_trace_len: usize,
    /// Wall-clock `invoke` accounting (rolled back with the checkpoint on
    /// crash recovery; replayed invocations are re-measured).
    compute: ComputeStats,
    /// Engine mode at the previous invocation, for `supervisor.transition`
    /// telemetry events.
    last_mode: Option<SupervisorMode>,
    /// Whether the run's one hot-swap has committed (rolled back with the
    /// checkpoint on crash recovery, so the replay re-performs it).
    swapped: bool,
    /// Request-serving state (`None` for batch runs). Cloned with the
    /// checkpoint — the traffic RNG and queue roll back with everything
    /// else, so crash recovery replays the identical arrival stream.
    serving: Option<ServingState>,
}

/// Live request-serving state of one run.
#[derive(Clone)]
struct ServingState {
    /// Open-loop arrival process (owns its own RNG stream, salted away
    /// from the fault injector's).
    traffic: Traffic,
    /// Admission queue fed by the board's delivered instructions.
    queue: RequestQueue,
    /// Shed fraction commanded at the previous invocation, applied to
    /// this window's arrivals (the actuation pipeline has one period of
    /// latency like every other knob).
    shed_frac: f64,
    /// Highest shed fraction commanded so far.
    max_shed_frac: f64,
    /// Serving invocations observed.
    invocations: u64,
    /// Invocations whose windowed p99 exceeded the SLO bound.
    violations: u64,
}

/// One recovery point: a deep copy of the run state, the engine snapshot,
/// and how much of the journal was already written when it was taken.
struct Checkpoint {
    state: RunState,
    engine: EngineState,
    journal_len: usize,
}

/// An experiment: a scheme plus the design artifacts it deploys.
pub struct Experiment {
    scheme: Scheme,
    design: Design,
    options: RunOptions,
    recorder: Option<Arc<dyn Recorder>>,
}

impl Experiment {
    /// Creates an experiment against the cached default design.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid schemes; kept fallible for parity
    /// with [`Experiment::run`] call sites.
    pub fn new(scheme: Scheme) -> Result<Self> {
        Ok(Experiment {
            scheme,
            design: default_design().clone(),
            options: RunOptions::default(),
            recorder: None,
        })
    }

    /// Creates an experiment against an explicit design (sensitivity
    /// studies).
    pub fn with_design(scheme: Scheme, design: Design) -> Self {
        Experiment {
            scheme,
            design,
            options: RunOptions::default(),
            recorder: None,
        }
    }

    /// Creates an experiment whose *entire* pipeline is seeded from
    /// `seed`: the identification excitation (via the per-seed design
    /// cache, so the design is built once and replayed bit-identically)
    /// and the board RNG (`RunOptions::board_seed`). Two experiments
    /// created with the same seed produce bit-identical designs and runs —
    /// the contract `run_recoverable`'s crash-replay depends on.
    ///
    /// Note that a later `with_options` call replaces the whole
    /// [`RunOptions`], including the board seed set here.
    ///
    /// # Errors
    ///
    /// Propagates design-pipeline failures from
    /// [`crate::design::design_for_seed`].
    pub fn with_seed(scheme: Scheme, seed: u64) -> Result<Self> {
        let design = crate::design::design_for_seed(seed)?;
        Ok(Experiment {
            scheme,
            design,
            options: RunOptions {
                board_seed: Some(seed),
                ..Default::default()
            },
            recorder: None,
        })
    }

    /// Overrides the run options.
    pub fn with_options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches an explicit telemetry recorder to this experiment's runs.
    /// Without one, runtime telemetry goes to the process-global recorder
    /// ([`yukta_obs::handle`]) — the shared no-op unless a bench installed
    /// a sink. Recording never perturbs the run: an instrumented run's
    /// [`Report`] is bit-identical to an uninstrumented one.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The recorder serving this experiment's runtime telemetry.
    fn rec(&self) -> &dyn Recorder {
        match &self.recorder {
            Some(r) => r.as_ref(),
            None => yukta_obs::handle(),
        }
    }

    /// A cloneable handle on the same recorder, for the board.
    fn obs_handle(&self) -> ObsHandle {
        match &self.recorder {
            Some(r) => ObsHandle::new(Arc::clone(r)),
            None => ObsHandle::default(),
        }
    }

    /// The scheme under test.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The design in use.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Runs the workload to completion under this scheme.
    ///
    /// # Errors
    ///
    /// Propagates controller-instantiation failures.
    pub fn run(&self, workload: &Workload) -> Result<Report> {
        let controllers = self.scheme.instantiate(&self.design, self.options.limits)?;
        self.run_with_controllers(workload, controllers)
    }

    /// Runs with externally supplied controllers (used by the fixed-target
    /// and sensitivity experiments).
    ///
    /// # Errors
    ///
    /// Propagates typed numerical errors from controller invocations.
    pub fn run_with_controllers(
        &self,
        workload: &Workload,
        controllers: Controllers,
    ) -> Result<Report> {
        self.execute(
            workload,
            Engine::Raw {
                c: controllers,
                auto: ModeAutomaton::new(ModeConfig::default()),
            },
            None,
        )
    }

    /// Runs the workload under the fault-containment supervisor, optionally
    /// with a fault-injection plan corrupting the board interface.
    ///
    /// With `plan = None` (or a zero-severity plan) the supervisor is
    /// transparent and the resulting metrics are bit-identical to
    /// [`Experiment::run`]. Crash points in the plan are ignored here —
    /// only [`Experiment::run_recoverable`] injects them — so a plan with
    /// crashes runs uninterrupted, which is exactly the baseline the
    /// recovery verifier compares against.
    ///
    /// # Errors
    ///
    /// Propagates controller-instantiation failures; the supervised loop
    /// itself never returns a controller error.
    pub fn run_supervised(
        &self,
        workload: &Workload,
        sup_cfg: SupervisorConfig,
        plan: Option<FaultPlan>,
    ) -> Result<Report> {
        let controllers = self.scheme.instantiate(&self.design, self.options.limits)?;
        self.run_supervised_with_controllers(workload, controllers, sup_cfg, plan)
    }

    /// [`Experiment::run_supervised`] with externally supplied controllers
    /// (property tests use cheap hand-built controller instances).
    ///
    /// # Errors
    ///
    /// Infallible at present; fallible signature for uniformity.
    pub fn run_supervised_with_controllers(
        &self,
        workload: &Workload,
        controllers: Controllers,
        sup_cfg: SupervisorConfig,
        plan: Option<FaultPlan>,
    ) -> Result<Report> {
        let sup = Box::new(Supervisor::new(controllers, sup_cfg));
        self.execute(workload, Engine::Supervised(sup), plan)
    }

    /// [`Experiment::run_supervised`] with one mid-run controller swap:
    /// just before invocation `swap_at`, the serving controllers are
    /// hot-swapped for `next` (or, with `next = None`, for a fresh
    /// instantiation of the same scheme — the zero-change resynthesis
    /// case, whose run is bit-identical to an unswapped one because the
    /// synthesis pipeline is deterministic and the transfer is bumpless).
    /// Emits a `runtime.resynth` event recording the step and whether the
    /// transfer was bumpless.
    ///
    /// This is the deployment seam for in-loop resynthesis: a background
    /// D–K synthesis (fast enough to fit inside one controller period
    /// after the batched-D/parallel-γ work, see `yukta_control::dk`)
    /// produces `next`, and the runtime installs it between invocations
    /// with no actuation gap.
    ///
    /// # Errors
    ///
    /// Propagates controller-instantiation failures.
    pub fn run_supervised_with_swap(
        &self,
        workload: &Workload,
        sup_cfg: SupervisorConfig,
        plan: Option<FaultPlan>,
        swap_at: u64,
        next: Option<Controllers>,
    ) -> Result<Report> {
        // Crash points are documented as ignored on this path; strip them
        // so the unified runner does not demand recovery options. Crashes
        // never touch the injector RNG or the fault report, so the strip
        // is bit-invisible.
        let plan = plan.map(|mut p| {
            p.crashes.clear();
            p
        });
        let run = self.run_unified_impl(
            workload,
            UnifiedOptions {
                sup_cfg: Some(sup_cfg),
                plan,
                swap: Some(SwapSpec {
                    at_step: swap_at,
                    scheme: None,
                }),
                recovery: None,
                serving: None,
            },
            next,
        )?;
        Ok(run.report)
    }

    /// [`Experiment::run_supervised`] with the loop-health monitor
    /// attached as a pure observer (DESIGN.md §16): every invocation
    /// record is distilled into health signals and streamed through the
    /// drift/phase-change detectors, but no verdict ever acts on the run.
    /// The [`Report`] is bit-identical to [`Experiment::run_supervised`]
    /// with the same inputs — the monitor never touches the board, the
    /// engine, or the RNG streams, and telemetry is emitted only when the
    /// recorder is enabled.
    ///
    /// # Errors
    ///
    /// Typed [`Error::NoSolution`] on an invalid [`HealthConfig`];
    /// propagates controller-instantiation failures.
    pub fn run_monitored(
        &self,
        workload: &Workload,
        sup_cfg: SupervisorConfig,
        plan: Option<FaultPlan>,
        health: HealthConfig,
    ) -> Result<(Report, HealthStats)> {
        let (report, stats) = self.run_monitored_opt(workload, sup_cfg, plan, Some(health))?;
        Ok((report, stats.expect("monitor was attached")))
    }

    /// [`Experiment::run_monitored`] with the monitor optional: `None`
    /// runs the same loop with the monitoring seam compiled in but no tap
    /// attached — the disabled-monitor configuration a deployment ships
    /// when health telemetry is off, and the one whose overhead
    /// `bench_health` gates against plain [`Experiment::run_supervised`].
    ///
    /// # Errors
    ///
    /// Typed [`Error::NoSolution`] on an invalid [`HealthConfig`];
    /// propagates controller-instantiation failures.
    pub fn run_monitored_opt(
        &self,
        workload: &Workload,
        sup_cfg: SupervisorConfig,
        plan: Option<FaultPlan>,
        health: Option<HealthConfig>,
    ) -> Result<(Report, Option<HealthStats>)> {
        let mut tap = match health {
            Some(cfg) => Some(self.build_tap(cfg)?),
            None => None,
        };
        let controllers = self.scheme.instantiate(&self.design, self.options.limits)?;
        let mut engine = Engine::Supervised(Box::new(Supervisor::new(controllers, sup_cfg)));
        let mut st = self.init_state(workload, plan.as_ref(), None);
        while !st.done {
            if let Some(record) = self.step_invocation(&mut st, &mut engine, false)? {
                if let Some(tap) = tap.as_mut() {
                    let verdict = tap.observe(&record);
                    let rec = self.rec();
                    if rec.enabled() {
                        emit_verdict(rec, record.step, verdict);
                    }
                }
            }
        }
        if let Some(tap) = tap.as_ref() {
            let rec = self.rec();
            if rec.enabled() {
                tap.publish(rec);
            }
        }
        let report = self.finish(st, &engine, plan.as_ref(), workload);
        Ok((report, tap.map(|t| t.stats())))
    }

    /// Closes the observe → detect → re-identify → hot-swap loop: the
    /// health monitor watches the run as in [`Experiment::run_monitored`],
    /// and on a `PhaseChange` verdict the runtime re-identifies the plant
    /// from the tap's retained history ([`fit_arx`] over the last ≤ 128 s
    /// of normalized records), installs the refit model as the tap's new
    /// residual reference, and hot-swaps the serving controllers for a
    /// fresh instantiation of the experiment's scheme through the
    /// [`ModeAutomaton`]'s request→commit protocol — the same seam
    /// [`Experiment::run_supervised_with_swap`] uses, so every swap is
    /// audited for actuation gaps and dual writers.
    ///
    /// With [`AdaptiveOptions::initial`] set, the run *starts* on that
    /// scheme and each swap installs the experiment's own scheme — the
    /// adapt-under-phase-change deployment story: a conservative
    /// controller serves until the detectors prove the plant moved, then
    /// the full synthesis takes over.
    ///
    /// # Errors
    ///
    /// Typed [`Error::NoSolution`] on an invalid [`HealthConfig`] or
    /// supervisor configuration; propagates controller-instantiation
    /// failures.
    pub fn run_adaptive(&self, workload: &Workload, opts: AdaptiveOptions) -> Result<AdaptiveRun> {
        opts.sup_cfg.validate()?;
        let mut tap = self.build_tap(opts.health)?;
        let start_scheme = opts.initial.unwrap_or(self.scheme);
        let controllers = start_scheme.instantiate(&self.design, self.options.limits)?;
        let mut engine = Engine::Supervised(Box::new(Supervisor::new(controllers, opts.sup_cfg)));
        let mut st = self.init_state(workload, opts.plan.as_ref(), None);
        let mut cycles: Vec<SwapCycle> = Vec::new();
        let mut pending_detect: Option<u64> = None;
        while !st.done {
            if let Some(detect_step) = pending_detect.take() {
                if (cycles.len() as u32) < opts.max_swaps {
                    let cycle = self.adapt_swap(&mut st, &mut engine, &mut tap, detect_step)?;
                    cycles.push(cycle);
                }
            }
            if let Some(record) = self.step_invocation(&mut st, &mut engine, false)? {
                let verdict = tap.observe(&record);
                let rec = self.rec();
                if rec.enabled() {
                    emit_verdict(rec, record.step, verdict);
                }
                if let HealthVerdict::PhaseChange { .. } = verdict {
                    pending_detect = Some(record.step);
                }
            }
        }
        let rec = self.rec();
        if rec.enabled() {
            tap.publish(rec);
        }
        let invariant_violations = engine.violations();
        let report = self.finish(st, &engine, opts.plan.as_ref(), workload);
        Ok(AdaptiveRun {
            report,
            health: tap.stats(),
            cycles,
            invariant_violations,
        })
    }

    /// One adaptive cycle: refit the plant from the tap's history, swap in
    /// a fresh instantiation of the experiment's scheme, and re-arm the
    /// detectors against the refit model.
    fn adapt_swap(
        &self,
        st: &mut RunState,
        engine: &mut Engine,
        tap: &mut HealthTap,
        detect_step: u64,
    ) -> Result<SwapCycle> {
        // Re-identify from the retained window. The orders mirror the
        // design pipeline's; ridge regularization keeps the regression
        // posed on closed-loop data (inputs correlate with outputs).
        let refit_cfg = yukta_control::sysid::SysIdConfig {
            na: 2,
            nb: 2,
            nc: 0,
            plr_iters: 0,
            ridge: 1e-4,
        };
        let (u, y) = tap.history();
        let refit = fit_arx(u, y, refit_cfg)
            .and_then(|m| validation_residual(u, y, &m).map(|r| (m, r)))
            .ok();
        let fit_residual = refit.as_ref().map_or(-1.0, |(_, r)| *r);
        let rec = self.rec();
        if rec.enabled() {
            rec.event(
                "health.refit",
                &[
                    ("step", Value::U64(st.step)),
                    ("fit_residual", Value::F64(fit_residual)),
                ],
            );
        }
        engine.request_swap();
        let replacement = self.scheme.instantiate(&self.design, self.options.limits)?;
        let bumpless = engine.swap_primary(replacement);
        st.swapped = true;
        if rec.enabled() {
            rec.event(
                "runtime.resynth",
                &[
                    ("step", Value::U64(st.step)),
                    ("bumpless", Value::Bool(bumpless)),
                ],
            );
        }
        tap.rearm_after_swap(refit.map(|(m, _)| m.sys));
        Ok(SwapCycle {
            detect_step,
            swap_step: st.step,
            fit_residual,
            bumpless,
        })
    }

    /// Builds the run's health tap, mapping config errors to the
    /// workspace's typed error (the dynamic detail is available from
    /// [`HealthConfig::validate`] directly).
    fn build_tap(&self, health: HealthConfig) -> Result<HealthTap> {
        HealthTap::new(&self.design, health).map_err(|_| Error::NoSolution {
            op: "health_config",
            why: "invalid health configuration (see HealthConfig::validate)",
        })
    }

    /// Instantiates the engine for this experiment: the scheme's
    /// controllers, raw or wrapped in a supervisor. Recovery rebuilds the
    /// engine through the same path (a crashed daemon restarts from its
    /// binary, not from its heap).
    fn build_engine(&self, sup_cfg: Option<SupervisorConfig>) -> Result<Engine> {
        self.build_engine_for(self.scheme, sup_cfg)
    }

    /// [`Experiment::build_engine`] with an explicit serving scheme —
    /// recovery rebuilds from the *post-swap* scheme when the checkpoint
    /// being restored was taken after a cross-scheme hot-swap committed.
    fn build_engine_for(
        &self,
        scheme: Scheme,
        sup_cfg: Option<SupervisorConfig>,
    ) -> Result<Engine> {
        let controllers = scheme.instantiate(&self.design, self.options.limits)?;
        Ok(match sup_cfg {
            None => Engine::Raw {
                c: controllers,
                auto: ModeAutomaton::new(ModeConfig::default()),
            },
            Some(cfg) => Engine::Supervised(Box::new(Supervisor::new(controllers, cfg))),
        })
    }

    /// Fresh run state at simulated time zero.
    fn init_state(
        &self,
        workload: &Workload,
        plan: Option<&FaultPlan>,
        serving: Option<&ServingSpec>,
    ) -> RunState {
        let mut cfg = BoardConfig::odroid_xu3();
        if let Some(seed) = self.options.board_seed {
            cfg.seed = seed;
        }
        let steps_per_invocation = (0.5 / cfg.dt).round() as usize;
        let mut board = match plan {
            Some(p) => Board::with_faults(cfg, p.clone()),
            None => Board::new(cfg),
        };
        board.set_obs(self.obs_handle());
        if let Some(spec) = serving {
            board.set_external_cap_f_big(spec.ext_cap_f_big);
        }
        let serving = serving.map(|spec| ServingState {
            traffic: Traffic::new(spec.traffic),
            queue: RequestQueue::new(spec.queue),
            shed_frac: 0.0,
            max_shed_frac: 0.0,
            invocations: 0,
            violations: 0,
        });
        RunState {
            board,
            run: WorkloadRun::new(workload),
            trace: Trace::new(),
            steps_per_invocation,
            last_instr_big: 0.0,
            last_instr_little: 0.0,
            completed: false,
            done: false,
            step: 0,
            fault_trace_len: 0,
            compute: ComputeStats::default(),
            last_mode: None,
            swapped: false,
            serving,
        }
    }

    /// One controller period: evolve the plant for 500 ms, gather both
    /// layers' sensor views, invoke the engine, actuate, and journal.
    ///
    /// Returns `None` when the run ended (workload done or timeout) during
    /// the plant-evolution phase, before the controllers were invoked.
    ///
    /// With `crash_here` the injected crash fires after the plant evolved
    /// but before the sense/invoke/actuate half of the invocation — the
    /// partial step must be discarded by recovery, exactly as a daemon
    /// dying between sysfs reads would lose its in-flight work.
    fn step_invocation(
        &self,
        st: &mut RunState,
        engine: &mut Engine,
        crash_here: bool,
    ) -> Result<Option<JournalRecord>> {
        // One controller period of plant evolution.
        for _ in 0..st.steps_per_invocation {
            let loads = st.run.loads();
            let rep = st.board.step(&loads);
            st.run.advance(&rep.thread_progress);
            if st.run.is_done() {
                st.completed = true;
                st.done = true;
                return Ok(None);
            }
            if st.board.time() >= self.options.timeout_s {
                st.done = true;
                return Ok(None);
            }
        }
        if crash_here {
            std::panic::panic_any(InjectedCrash { step: st.step });
        }
        // Gather both layers' sensor views.
        let bs = st.board.state();
        let now = st.board.time();
        let ib = st.board.instructions(Cluster::Big);
        let il = st.board.instructions(Cluster::Little);
        let bips_big = (ib - st.last_instr_big) / 0.5;
        let bips_little = (il - st.last_instr_little) / 0.5;
        st.last_instr_big = ib;
        st.last_instr_little = il;
        let n_active = st.run.active_threads();
        let tb_actual = bs.placement.threads_big.min(n_active);
        // Serving layer: serve the backlog with the instructions the board
        // actually delivered this window, admit this window's arrivals
        // (they wait for the next window — no serve-before-arrival), then
        // observe windowed tail latency into both controllers' senses.
        let slo = match &mut st.serving {
            Some(sv) => {
                let capacity_gi = (bips_big + bips_little) * 0.5;
                sv.queue.advance(now - 0.5, now, capacity_gi);
                for r in sv.traffic.tick(0.5) {
                    sv.queue.offer(r.arrival_s, r.demand_gi, sv.shed_frac);
                }
                let snap = sv.queue.latency_snapshot();
                let seen = snap.completed + snap.dropped;
                let drop_frac = if seen > 0 {
                    snap.dropped as f64 / seen as f64
                } else {
                    0.0
                };
                sv.invocations += 1;
                if snap.p99_s > self.options.limits.latency_slo_s {
                    sv.violations += 1;
                }
                SloSense {
                    active: true,
                    p95_s: snap.p95_s,
                    p99_s: snap.p99_s,
                    backlog_frac: snap.backlog_frac,
                    drop_frac,
                }
            }
            None => SloSense::default(),
        };
        let hw_outputs = HwOutputs {
            perf: bips_big + bips_little,
            p_big: st.board.read_power(Cluster::Big),
            p_little: st.board.read_power(Cluster::Little),
            temp: st.board.read_temp(),
        };
        let os_outputs = OsOutputs {
            perf_little: bips_little,
            perf_big: bips_big,
            spare_diff: spare_capacity(bs.big_cores, tb_actual)
                - spare_capacity(bs.little_cores, n_active - tb_actual),
        };
        let current_hw = HwInputs {
            big_cores: bs.big_cores as f64,
            little_cores: bs.little_cores as f64,
            f_big: bs.f_big,
            f_little: bs.f_little,
        };
        let current_os = OsInputs {
            threads_big: tb_actual as f64,
            packing_big: bs.placement.packing_big,
            packing_little: bs.placement.packing_little,
        };
        let hw_sense = HwSense {
            outputs: hw_outputs,
            ext: current_os,
            current: current_hw,
            active_threads: n_active,
            slo,
            limits: self.options.limits,
        };
        let os_sense = OsSense {
            outputs: os_outputs,
            ext: current_hw,
            current: current_os,
            active_threads: n_active,
            system: hw_outputs,
            slo,
            limits: self.options.limits,
        };
        // Invoke the controllers (both see the pre-invocation state,
        // like the prototype's independent processes). Wall-clock timing is
        // always on: ComputeStats is the production jitter budget and two
        // `Instant` reads are noise next to one controller invocation.
        let rec = self.rec();
        let span = yukta_obs::span(rec, "runtime.invoke");
        let t0 = Instant::now();
        let invoke_result = engine.invoke(&hw_sense, &os_sense);
        // Drain the automaton's transition log even on the error path so
        // an aborted invocation cannot leave stale records behind.
        let transitions = engine.drain_transitions();
        let (hw_u, os_u) = invoke_result?;
        let invoke_ns = t0.elapsed().as_nanos() as u64;
        let mode = engine.mode();
        if rec.enabled() {
            span.end_with(&[
                ("step", Value::U64(st.step)),
                ("t_sim", Value::F64(now)),
                ("mode", Value::Str(mode_label(mode))),
            ]);
            rec.hist_record("runtime.invoke_ns", invoke_ns as f64);
            if mode != st.last_mode {
                rec.event(
                    "supervisor.transition",
                    &[
                        ("from", Value::Str(mode_label(st.last_mode))),
                        ("to", Value::Str(mode_label(mode))),
                        ("step", Value::U64(st.step)),
                        ("t_sim", Value::F64(now)),
                    ],
                );
            }
            // Every automaton transition this invocation, with its cause —
            // the audited choke point's own account of the mode machine.
            for t in &transitions {
                rec.event(
                    "mode.transition",
                    &[
                        ("from", Value::Str(level_label(t.from))),
                        ("to", Value::Str(level_label(t.to))),
                        ("cause", Value::Str(t.cause)),
                        ("step", Value::U64(st.step)),
                        ("t_sim", Value::F64(now)),
                    ],
                );
            }
        } else {
            drop(span);
        }
        st.last_mode = mode;
        // The shed fraction the supervisor just committed takes effect on
        // the *next* window's admissions — one controller period of
        // actuation latency, like every other knob.
        if let Some(sv) = &mut st.serving {
            sv.shed_frac = engine.shed_frac();
            sv.max_shed_frac = sv.max_shed_frac.max(sv.shed_frac);
        }
        st.compute.invocations += 1;
        st.compute.total_ns += invoke_ns;
        st.compute.max_ns = st.compute.max_ns.max(invoke_ns);
        st.board.actuate(&Actuation {
            f_big: Some(hw_u.f_big),
            f_little: Some(hw_u.f_little),
            big_cores: Some(hw_u.big_cores.round() as usize),
            little_cores: Some(hw_u.little_cores.round() as usize),
            placement: Some(Placement {
                threads_big: os_u.threads_big.round() as usize,
                packing_big: os_u.packing_big,
                packing_little: os_u.packing_little,
            }),
        });
        if self.options.keep_trace {
            st.trace.push(TraceSample {
                time: now,
                p_big: hw_outputs.p_big,
                p_little: hw_outputs.p_little,
                temp: bs.t_hot,
                bips: hw_outputs.perf,
                bips_big,
                bips_little,
                f_big: bs.f_big,
                f_little: bs.f_little,
                big_cores: bs.big_cores,
                little_cores: bs.little_cores,
                threads_big: tb_actual,
                active_threads: n_active,
            });
        }
        // Fault events injected during this period (sensor faults from the
        // reads above, actuator faults from the actuation just applied).
        let fault_events = match st.board.fault_trace() {
            Some(t) => {
                let ev = t[st.fault_trace_len..].to_vec();
                st.fault_trace_len = t.len();
                ev
            }
            None => Vec::new(),
        };
        let record = JournalRecord {
            step: st.step,
            time: now,
            hw_sense,
            os_sense,
            hw_u,
            os_u,
            mode,
            fault_events,
        };
        st.step += 1;
        Ok(Some(record))
    }

    /// Assembles the final report from a finished run state.
    fn finish(
        &self,
        st: RunState,
        engine: &Engine,
        plan: Option<&FaultPlan>,
        workload: &Workload,
    ) -> Report {
        let supervisor = match engine {
            Engine::Supervised(s) => Some(s.stats()),
            Engine::Raw { .. } => None,
        };
        let faults = plan.map(|p| FaultReport {
            seed: p.seed,
            severity: p.severity,
            stats: st.board.fault_stats().unwrap_or_default(),
            trace: st.board.fault_trace().unwrap_or_default().to_vec(),
        });
        let slo = st.serving.as_ref().map(|sv| {
            let qs = sv.queue.stats();
            SloReport {
                offered: qs.offered,
                admitted: qs.admitted,
                shed: qs.shed,
                rejected: qs.rejected,
                timed_out: qs.timed_out,
                completed: qs.completed,
                p95_s: sv.queue.lifetime_quantile(0.95).unwrap_or(0.0),
                p99_s: sv.queue.lifetime_quantile(0.99).unwrap_or(0.0),
                violation_frac: if sv.invocations == 0 {
                    0.0
                } else {
                    sv.violations as f64 / sv.invocations as f64
                },
                max_shed_frac: sv.max_shed_frac,
            }
        });
        Report {
            workload: workload.name.clone(),
            scheme: self.scheme.label().to_string(),
            metrics: Metrics {
                energy_joules: st.board.energy(),
                delay_seconds: st.board.time(),
                completed: st.completed,
            },
            trace: st.trace,
            supervisor,
            faults,
            slo,
            actuation: st.board.actuation_audit(),
            compute: st.compute,
        }
    }

    fn execute(
        &self,
        workload: &Workload,
        mut engine: Engine,
        plan: Option<FaultPlan>,
    ) -> Result<Report> {
        let mut st = self.init_state(workload, plan.as_ref(), None);
        while !st.done {
            self.step_invocation(&mut st, &mut engine, false)?;
        }
        Ok(self.finish(st, &engine, plan.as_ref(), workload))
    }

    /// Runs the workload under the crash-tolerance machinery: every
    /// invocation is journaled, the complete run state is checkpointed
    /// every [`RecoveryOptions::checkpoint_interval`] invocations, and the
    /// plan's crash points ([`FaultPlan::with_crash`]) kill the controller
    /// process mid-invocation. Each crash is recovered by rebuilding the
    /// engine from scratch, restoring the latest checkpoint, and replaying
    /// the journal suffix; the replayed records are verified bit-for-bit
    /// against the journal as they are reproduced.
    ///
    /// The recovered [`Report`] is bit-identical to what
    /// [`Experiment::run_supervised`] (with `sup_cfg = Some`) or
    /// [`Experiment::run`]/[`Experiment::run_with_controllers`]
    /// (`sup_cfg = None`, no plan) produces for the same seed: crashes are
    /// driven by the invocation counter and reported out-of-band in the
    /// [`RecoveryReport`], so they never perturb the fault-injection RNG
    /// stream or the plant.
    ///
    /// # Errors
    ///
    /// Propagates controller-instantiation and restore failures. A panic
    /// that is not an [`InjectedCrash`] is re-raised, not swallowed.
    ///
    /// # Panics
    ///
    /// Re-raises non-injected panics from the controller stack.
    pub fn run_recoverable(
        &self,
        workload: &Workload,
        sup_cfg: Option<SupervisorConfig>,
        plan: Option<FaultPlan>,
        ropts: RecoveryOptions,
    ) -> Result<RecoveredRun> {
        self.run_unified_impl(
            workload,
            UnifiedOptions {
                sup_cfg,
                plan,
                swap: None,
                recovery: Some(ropts),
                serving: None,
            },
            None,
        )
    }

    /// The composed entry point: one runner for every combination of
    /// supervision, fault injection, a mid-run hot-swap, and crash
    /// recovery, all flowing through the checked mode automaton. The
    /// pairwise paths ([`Experiment::run_recoverable`],
    /// [`Experiment::run_supervised_with_swap`]) are thin wrappers over
    /// this, so a swap-enabled run is also checkpointable/recoverable —
    /// including a crash that lands between swap-request and swap-commit,
    /// which recovery replays to a bit-identical outcome.
    ///
    /// # Errors
    ///
    /// Typed [`yukta_linalg::Error::NoSolution`] on invalid combinations:
    /// a flapping-prone supervisor configuration
    /// ([`SupervisorConfig::validate`]), or crash points in the plan
    /// without recovery enabled. Propagates controller-instantiation and
    /// restore failures.
    ///
    /// # Panics
    ///
    /// Re-raises non-injected panics from the controller stack.
    pub fn run_unified(&self, workload: &Workload, opts: UnifiedOptions) -> Result<RecoveredRun> {
        self.run_unified_impl(workload, opts, None)
    }

    /// [`Experiment::run_unified`] plus an optional externally supplied
    /// replacement instance for the swap. Instance-based swaps are
    /// rejected when recovery is on: a heap-only instance cannot be
    /// rebuilt after a crash rollback, so recoverable runs must describe
    /// the replacement by recipe ([`SwapSpec::scheme`]).
    fn run_unified_impl(
        &self,
        workload: &Workload,
        opts: UnifiedOptions,
        mut instance_next: Option<Controllers>,
    ) -> Result<RecoveredRun> {
        if let Some(cfg) = &opts.sup_cfg {
            cfg.validate()?;
        }
        if let Some(spec) = &opts.serving {
            spec.validate(&self.options.limits)?;
        }
        let crash_steps: Vec<u64> = opts
            .plan
            .as_ref()
            .map(FaultPlan::crash_steps)
            .unwrap_or_default();
        if !crash_steps.is_empty() && opts.recovery.is_none() {
            return Err(Error::NoSolution {
                op: "run_unified",
                why: "crash points in the fault plan require recovery to be enabled",
            });
        }
        if instance_next.is_some() && opts.recovery.is_some() {
            return Err(Error::NoSolution {
                op: "run_unified",
                why: "instance-based swap cannot be rebuilt after a crash; use SwapSpec::scheme",
            });
        }
        let interval = opts.recovery.map(|r| r.checkpoint_interval.max(1));
        let swap_spec = opts.swap;
        // Crash points, soonest first; consumed as they fire so recovery
        // does not re-crash at the same step.
        let mut pending = crash_steps;
        let mut engine = self.build_engine(opts.sup_cfg)?;
        let mut st = self.init_state(workload, opts.plan.as_ref(), opts.serving.as_ref());
        let mut journal = Journal::new();
        let mut recovery = RecoveryReport::default();
        let mut ckpt = interval.map(|_| Checkpoint {
            state: st.clone(),
            engine: engine.save_state(),
            journal_len: 0,
        });
        if ckpt.is_some() {
            recovery.checkpoints = 1;
        }
        while !st.done {
            if let (Some(interval), Some(c)) = (interval, &mut ckpt) {
                if st.step > c.state.step && st.step.is_multiple_of(interval) {
                    let rec = self.rec();
                    let span = yukta_obs::span(rec, "runtime.checkpoint");
                    *c = Checkpoint {
                        state: st.clone(),
                        engine: engine.save_state(),
                        journal_len: journal.len(),
                    };
                    recovery.checkpoints += 1;
                    if rec.enabled() {
                        span.end_with(&[
                            ("step", Value::U64(st.step)),
                            ("journal_len", Value::U64(journal.len() as u64)),
                        ]);
                    } else {
                        drop(span);
                    }
                }
            }
            let crash_here = pending.first() == Some(&st.step);
            let swap_here = match swap_spec {
                Some(spec) => !st.swapped && st.step == spec.at_step,
                None => false,
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if swap_here {
                    if let Some(spec) = swap_spec {
                        // A crash at the swap step lands inside the swap
                        // window, between request and commit.
                        self.perform_swap(
                            &mut st,
                            &mut engine,
                            spec,
                            &mut instance_next,
                            crash_here,
                        )?;
                    }
                }
                self.step_invocation(&mut st, &mut engine, crash_here && !swap_here)
            }));
            match outcome {
                Ok(result) => {
                    if let Some(record) = result? {
                        journal.push(record);
                        let rec = self.rec();
                        if rec.enabled() {
                            rec.counter_add("runtime.journal_records", 1);
                        }
                    }
                }
                Err(payload) => {
                    if payload.downcast_ref::<InjectedCrash>().is_none() {
                        resume_unwind(payload);
                    }
                    let Some(c) = &ckpt else {
                        // Unreachable: crashes were rejected above unless
                        // recovery (and thus a checkpoint) exists.
                        resume_unwind(payload);
                    };
                    pending.remove(0);
                    recovery.crashes += 1;
                    let rec = self.rec();
                    if rec.enabled() {
                        rec.event("runtime.crash", &[("step", Value::U64(st.step))]);
                    }
                    // The daemon died mid-invocation: its partial step is
                    // lost. Restart from the binary (fresh instantiation),
                    // load the checkpoint, replay the journal suffix.
                    let recover_span = yukta_obs::span(rec, "runtime.recover");
                    // The checkpoint may postdate a committed hot-swap, in
                    // which case the serving controllers are the swap
                    // recipe's, not the experiment's own scheme.
                    let serving = match (c.state.swapped, swap_spec) {
                        (true, Some(spec)) => spec.scheme.unwrap_or(self.scheme),
                        _ => self.scheme,
                    };
                    engine = self.build_engine_for(serving, opts.sup_cfg)?;
                    engine.restore_state(&c.engine)?;
                    engine.begin_recovery();
                    st = c.state.clone();
                    for i in c.journal_len..journal.len() {
                        // A swap that committed after the checkpoint was
                        // rolled back with it: re-perform it at the same
                        // point of the replay (deterministic by recipe).
                        if let Some(spec) = swap_spec {
                            if !st.swapped && st.step == spec.at_step {
                                self.perform_swap(
                                    &mut st,
                                    &mut engine,
                                    spec,
                                    &mut instance_next,
                                    false,
                                )?;
                            }
                        }
                        match self.step_invocation(&mut st, &mut engine, false)? {
                            Some(r) => {
                                recovery.replayed_records += 1;
                                if !r.bit_identical(&journal.records()[i]) {
                                    recovery.replay_divergences += 1;
                                }
                            }
                            None => {
                                // The journal says this invocation completed;
                                // ending early is a divergence.
                                recovery.replay_divergences += 1;
                                break;
                            }
                        }
                    }
                    engine.end_recovery();
                    recovery.recoveries += 1;
                    if rec.enabled() {
                        recover_span.end_with(&[
                            ("step", Value::U64(st.step)),
                            (
                                "replayed",
                                Value::U64((journal.len() - c.journal_len) as u64),
                            ),
                            ("divergences", Value::U64(recovery.replay_divergences)),
                        ]);
                    } else {
                        drop(recover_span);
                    }
                }
            }
        }
        recovery.invariant_violations = engine.violations();
        let report = self.finish(st, &engine, opts.plan.as_ref(), workload);
        Ok(RecoveredRun {
            report,
            journal,
            recovery,
        })
    }

    /// Stages and commits the run's hot-swap through the automaton's
    /// request→commit protocol. With `crash_here`, the injected crash
    /// fires inside the vulnerable window — after the request, before the
    /// commit — which is exactly the interleaving the chaos campaign must
    /// recover from bit-identically.
    fn perform_swap(
        &self,
        st: &mut RunState,
        engine: &mut Engine,
        spec: SwapSpec,
        instance_next: &mut Option<Controllers>,
        crash_here: bool,
    ) -> Result<()> {
        engine.request_swap();
        if crash_here {
            std::panic::panic_any(InjectedCrash { step: st.step });
        }
        let replacement = match instance_next.take() {
            Some(c) => c,
            None => {
                let scheme = spec.scheme.unwrap_or(self.scheme);
                scheme.instantiate(&self.design, self.options.limits)?
            }
        };
        let bumpless = engine.swap_primary(replacement);
        st.swapped = true;
        let rec = self.rec();
        if rec.enabled() {
            rec.event(
                "runtime.resynth",
                &[
                    ("step", Value::U64(st.step)),
                    ("bumpless", Value::Bool(bumpless)),
                ],
            );
        }
        Ok(())
    }

    /// Replays a journal against a freshly instantiated engine for this
    /// experiment's scheme, comparing every actuation bit-for-bit. This is
    /// the standing determinism invariant: `replay(journal)` must equal
    /// the original actuation stream exactly.
    ///
    /// # Errors
    ///
    /// Propagates controller-instantiation failures and raw-engine
    /// controller errors.
    pub fn replay_journal(
        &self,
        journal: &Journal,
        sup_cfg: Option<SupervisorConfig>,
    ) -> Result<ReplayOutcome> {
        let mut engine = self.build_engine(sup_cfg)?;
        replay_with(journal, |hw, os| engine.invoke(hw, os))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yukta_workloads::catalog;

    fn quick_options() -> RunOptions {
        RunOptions {
            timeout_s: 400.0,
            ..Default::default()
        }
    }

    #[test]
    fn coordinated_heuristic_completes_blackscholes() {
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        let rep = exp.run(&catalog::parsec::blackscholes()).unwrap();
        assert!(
            rep.metrics.completed,
            "timed out at {}",
            rep.metrics.delay_seconds
        );
        assert!(rep.metrics.energy_joules > 10.0);
        assert!(rep.metrics.delay_seconds > 10.0);
        assert!(!rep.trace.samples.is_empty());
    }

    #[test]
    fn decoupled_heuristic_is_worse_than_coordinated() {
        let wl = catalog::spec::mcf();
        let coord = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options())
            .run(&wl)
            .unwrap();
        let dec = Experiment::new(Scheme::DecoupledHeuristic)
            .unwrap()
            .with_options(quick_options())
            .run(&wl)
            .unwrap();
        assert!(coord.metrics.completed && dec.metrics.completed);
        assert!(
            dec.metrics.exd() > coord.metrics.exd() * 0.9,
            "decoupled {} vs coordinated {}",
            dec.metrics.exd(),
            coord.metrics.exd()
        );
    }

    #[test]
    fn yukta_ssv_ssv_is_competitive_with_coordinated_heuristic() {
        // On this simulator the hand-built coordinated heuristic is an
        // unusually strong baseline (see EXPERIMENTS.md); the SSV pair
        // must complete and stay within a modest factor of it. PRBS
        // identification excitation plus guardband auto-tuning brought
        // the pair from 568 s / 3.2x (timeout, previously #[ignore]d) to
        // ~208 s / ~1.3x on this workload.
        let wl = catalog::parsec::blackscholes();
        let coord = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options())
            .run(&wl)
            .unwrap();
        let yukta = Experiment::new(Scheme::YuktaHwSsvOsSsv)
            .unwrap()
            .with_options(quick_options())
            .run(&wl)
            .unwrap();
        assert!(yukta.metrics.completed);
        assert!(
            yukta.metrics.exd() < coord.metrics.exd() * 1.6,
            "yukta {} vs coordinated {}",
            yukta.metrics.exd(),
            coord.metrics.exd()
        );
    }

    #[test]
    fn traces_respect_limits_on_average_for_ssv() {
        let exp = Experiment::new(Scheme::YuktaHwSsvOsSsv)
            .unwrap()
            .with_options(quick_options());
        let rep = exp.run(&catalog::parsec::blackscholes()).unwrap();
        // Transients may cross the limit, but sustained operation must not.
        let mean_p = rep.trace.mean_of(|s| s.p_big);
        assert!(mean_p < 3.5, "mean big power {mean_p}");
        let mean_t = rep.trace.mean_of(|s| s.temp);
        assert!(mean_t < 80.0, "mean temperature {mean_t}");
    }

    #[test]
    fn zero_severity_supervised_run_is_bit_identical_to_baseline() {
        let wl = catalog::parsec::blackscholes();
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        let base = exp.run(&wl).unwrap();
        let sup = exp
            .run_supervised(
                &wl,
                SupervisorConfig::default(),
                Some(FaultPlan::uniform(7, 0.0)),
            )
            .unwrap();
        assert_eq!(
            base.metrics.energy_joules.to_bits(),
            sup.metrics.energy_joules.to_bits(),
            "energy differs: {} vs {}",
            base.metrics.energy_joules,
            sup.metrics.energy_joules
        );
        assert_eq!(
            base.metrics.delay_seconds.to_bits(),
            sup.metrics.delay_seconds.to_bits()
        );
        assert_eq!(base.metrics.completed, sup.metrics.completed);
        let st = sup.supervisor.expect("supervised run carries stats");
        assert_eq!(st.fallback_entries, 0, "transparent supervisor demoted");
        assert_eq!(st.degraded_invocations, 0);
        assert_eq!(st.sensor_faults_seen(), 0);
        let fr = sup.faults.expect("plan recorded");
        assert_eq!(fr.stats.total(), 0, "zero severity must inject nothing");
        assert!(fr.trace.is_empty());
    }

    #[test]
    fn supervised_run_survives_full_severity_faults() {
        let wl = catalog::spec::gamess();
        let exp = Experiment::new(Scheme::MonolithicLqg)
            .unwrap()
            .with_options(quick_options());
        let rep = exp
            .run_supervised(
                &wl,
                SupervisorConfig::default(),
                Some(FaultPlan::uniform(11, 1.0)),
            )
            .unwrap();
        assert!(rep.metrics.energy_joules.is_finite());
        assert!(rep.metrics.delay_seconds > 0.0);
        let st = rep.supervisor.unwrap();
        let fr = rep.faults.unwrap();
        assert!(fr.stats.total() > 0, "severity 1.0 must inject faults");
        assert!(
            st.sensor_faults_seen() + st.controller_errors > 0,
            "supervisor saw none of the injected faults"
        );
    }

    #[test]
    fn identical_seed_and_plan_reproduce_report_bit_for_bit() {
        let wl = catalog::spec::mcf();
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        let plan = FaultPlan::uniform(42, 0.6);
        let a = exp
            .run_supervised(&wl, SupervisorConfig::default(), Some(plan.clone()))
            .unwrap();
        let b = exp
            .run_supervised(&wl, SupervisorConfig::default(), Some(plan))
            .unwrap();
        assert!(a.bit_identical(&b), "same seed+plan must reproduce exactly");
        assert!(
            !a.faults.as_ref().unwrap().trace.is_empty(),
            "severity 0.6 should inject something"
        );
    }

    #[test]
    fn seeded_experiment_design_and_replay_are_bit_identical() {
        // Satellite of the excitation rework: the identification
        // excitation is seeded from the *experiment* seed, so a replayed
        // experiment rebuilds (from cache) the exact same design — and
        // the run itself stays bit-for-bit reproducible on top of it.
        let seed = 0xD1CE_u64;
        let wl = catalog::spec::mcf();
        let a = Experiment::with_seed(Scheme::YuktaHwSsvOsSsv, seed)
            .unwrap()
            .with_options(RunOptions {
                board_seed: Some(seed),
                ..quick_options()
            });
        let b = Experiment::with_seed(Scheme::YuktaHwSsvOsSsv, seed)
            .unwrap()
            .with_options(RunOptions {
                board_seed: Some(seed),
                ..quick_options()
            });
        // The designs are the same object bit-for-bit: same synthesized
        // controllers, same µ, same tuned guardbands.
        assert_eq!(
            a.design().hw_ssv.mu_peak.to_bits(),
            b.design().hw_ssv.mu_peak.to_bits()
        );
        assert_eq!(
            a.design().hw_uncertainty_used.to_bits(),
            b.design().hw_uncertainty_used.to_bits()
        );
        assert!(
            a.design()
                .hw_model_full
                .a()
                .approx_eq(b.design().hw_model_full.a(), 0.0),
            "seeded designs must be bit-identical"
        );
        // And it is genuinely the seed driving the excitation: a design
        // from a different seed differs.
        let c = Experiment::with_seed(Scheme::YuktaHwSsvOsSsv, seed ^ 1).unwrap();
        assert!(
            !a.design()
                .hw_model_full
                .a()
                .approx_eq(c.design().hw_model_full.a(), 0.0),
            "different seeds must produce different identified models"
        );
        let ra = a
            .run_recoverable(&wl, None, None, RecoveryOptions::default())
            .unwrap();
        let rb = b
            .run_recoverable(&wl, None, None, RecoveryOptions::default())
            .unwrap();
        assert!(
            ra.report.bit_identical(&rb.report),
            "seeded replay must reproduce bit-for-bit"
        );
    }

    #[test]
    fn monolithic_lqg_runs() {
        let exp = Experiment::new(Scheme::MonolithicLqg)
            .unwrap()
            .with_options(quick_options());
        let rep = exp.run(&catalog::spec::gamess()).unwrap();
        assert!(rep.metrics.delay_seconds > 0.0);
    }

    #[test]
    fn recoverable_without_crashes_matches_supervised_run_bit_for_bit() {
        let wl = catalog::parsec::blackscholes();
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        let plan = FaultPlan::uniform(17, 0.3);
        let base = exp
            .run_supervised(&wl, SupervisorConfig::default(), Some(plan.clone()))
            .unwrap();
        let rec = exp
            .run_recoverable(
                &wl,
                Some(SupervisorConfig::default()),
                Some(plan),
                RecoveryOptions::default(),
            )
            .unwrap();
        assert!(
            rec.report.bit_identical(&base),
            "journaling changed the run"
        );
        assert_eq!(rec.recovery.crashes, 0);
        assert_eq!(rec.recovery.replay_divergences, 0);
        assert!(rec.recovery.checkpoints >= 1);
        // The journal covers every invocation and survives the wire.
        assert_eq!(rec.journal.len(), base.trace.samples.len());
        let back = Journal::from_bytes(&rec.journal.to_bytes()).unwrap();
        assert_eq!(back.len(), rec.journal.len());
        for (a, b) in rec.journal.records().iter().zip(back.records()) {
            assert!(a.bit_identical(b));
        }
        // Standing invariant: a fresh controller stack replays the journal
        // with zero divergences.
        let replay = exp
            .replay_journal(&rec.journal, Some(SupervisorConfig::default()))
            .unwrap();
        assert_eq!(replay.steps, rec.journal.len() as u64);
        assert!(replay.is_exact(), "{replay:?}");
    }

    #[test]
    fn crash_recovery_reproduces_uninterrupted_run_bit_for_bit() {
        let wl = catalog::spec::gamess();
        let exp = Experiment::new(Scheme::MonolithicLqg)
            .unwrap()
            .with_options(quick_options());
        let plan = FaultPlan::uniform(21, 0.5).with_crash(9).with_crash(31);
        // run_supervised ignores crash points, so the same plan doubles as
        // the uninterrupted baseline.
        let base = exp
            .run_supervised(&wl, SupervisorConfig::default(), Some(plan.clone()))
            .unwrap();
        let rec = exp
            .run_recoverable(
                &wl,
                Some(SupervisorConfig::default()),
                Some(plan),
                RecoveryOptions {
                    checkpoint_interval: 8,
                },
            )
            .unwrap();
        assert_eq!(rec.recovery.crashes, 2, "both crashes must fire");
        assert_eq!(rec.recovery.recoveries, 2);
        assert!(rec.recovery.replayed_records > 0, "crash off checkpoint");
        assert_eq!(rec.recovery.replay_divergences, 0, "replay diverged");
        assert!(
            rec.report.bit_identical(&base),
            "recovered run differs from uninterrupted run"
        );
    }

    #[test]
    fn zero_change_swap_is_bit_identical() {
        // Hot-swapping a freshly re-synthesized controller that encodes
        // the same design must be invisible: the synthesis pipeline is
        // deterministic and the transfer is bumpless, so the swapped run
        // reproduces the unswapped one bit-for-bit.
        let wl = catalog::parsec::blackscholes();
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        let base = exp
            .run_supervised(&wl, SupervisorConfig::default(), None)
            .unwrap();
        let swapped = exp
            .run_supervised_with_swap(&wl, SupervisorConfig::default(), None, 5, None)
            .unwrap();
        assert!(
            swapped.bit_identical(&base),
            "zero-change swap perturbed the run"
        );
    }

    #[test]
    fn mid_run_resynthesis_swap_is_safe() {
        // Swapping in genuinely different controllers mid-run (the real
        // adaptive-resynthesis case) must keep the loop serving: the run
        // completes with finite, in-range actuations at every invocation
        // and no actuation gap (one trace sample per supervisor
        // invocation).
        let wl = catalog::parsec::blackscholes();
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        let next = Scheme::DecoupledHeuristic
            .instantiate(exp.design(), exp.options.limits)
            .unwrap();
        let rep = exp
            .run_supervised_with_swap(&wl, SupervisorConfig::default(), None, 5, Some(next))
            .unwrap();
        assert!(rep.metrics.completed, "swap stalled the workload");
        assert!(rep.metrics.energy_joules.is_finite());
        for (k, s) in rep.trace.samples.iter().enumerate() {
            assert!(
                s.f_big.is_finite() && (0.2..=2.0).contains(&s.f_big),
                "sample {k}: f_big {}",
                s.f_big
            );
            assert!(
                s.f_little.is_finite() && (0.2..=1.4).contains(&s.f_little),
                "sample {k}: f_little {}",
                s.f_little
            );
            assert!((1..=4).contains(&s.big_cores), "sample {k}");
            assert!(s.p_big.is_finite() && s.temp.is_finite(), "sample {k}");
        }
        let st = rep.supervisor.expect("supervised run carries stats");
        assert_eq!(
            st.invocations,
            rep.trace.samples.len() as u64,
            "actuation gap around the swap"
        );
        assert_eq!(st.fallback_entries, 0, "swap tripped the supervisor");
    }

    #[test]
    fn raw_engine_crash_recovery_matches_plain_run() {
        let wl = catalog::spec::mcf();
        let exp = Experiment::new(Scheme::DecoupledLqg)
            .unwrap()
            .with_options(quick_options());
        let base = exp.run(&wl).unwrap();
        // A zero-severity plan leaves the board identical to a plan-less
        // run; only the crash point differs from `run`.
        let plan = FaultPlan::uniform(5, 0.0).with_crash(6);
        let rec = exp
            .run_recoverable(
                &wl,
                None,
                Some(plan),
                RecoveryOptions {
                    checkpoint_interval: 4,
                },
            )
            .unwrap();
        assert_eq!(rec.recovery.crashes, 1);
        assert_eq!(rec.recovery.replay_divergences, 0);
        assert_eq!(
            rec.report.metrics.energy_joules.to_bits(),
            base.metrics.energy_joules.to_bits()
        );
        assert_eq!(
            rec.report.metrics.delay_seconds.to_bits(),
            base.metrics.delay_seconds.to_bits()
        );
        assert_eq!(rec.report.metrics.completed, base.metrics.completed);
        assert_eq!(rec.report.trace.samples.len(), base.trace.samples.len());
        for (a, b) in rec.report.trace.samples.iter().zip(&base.trace.samples) {
            assert_eq!(a.time.to_bits(), b.time.to_bits());
            assert_eq!(a.p_big.to_bits(), b.p_big.to_bits());
            assert_eq!(a.f_big.to_bits(), b.f_big.to_bits());
        }
        // Raw-engine records carry no supervisor mode.
        assert!(rec.journal.records().iter().all(|r| r.mode.is_none()));
    }

    #[test]
    fn unified_rejects_invalid_combinations_with_typed_errors() {
        let wl = catalog::spec::mcf();
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        // Crash points without recovery: there is nothing to recover with.
        let err = exp
            .run_unified(
                &wl,
                UnifiedOptions {
                    sup_cfg: Some(SupervisorConfig::default()),
                    plan: Some(FaultPlan::uniform(1, 0.0).with_crash(3)),
                    swap: None,
                    recovery: None,
                    serving: None,
                },
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                Error::NoSolution {
                    op: "run_unified",
                    ..
                }
            ),
            "{err:?}"
        );
        // Flapping-prone supervisor configurations are rejected up front.
        let err = exp
            .run_unified(
                &wl,
                UnifiedOptions {
                    sup_cfg: Some(SupervisorConfig {
                        reengage_after: 1,
                        ..Default::default()
                    }),
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                Error::NoSolution {
                    op: "supervisor_config",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn crash_inside_the_swap_window_recovers_bit_identically() {
        // The composed case the pairwise paths never exercised: a crash
        // that lands between swap-request and swap-commit, under fault
        // injection. Recovery rolls back to the checkpoint, replays the
        // journal suffix, re-performs the swap by recipe, and the final
        // report is bit-identical to the crash-free twin.
        let wl = catalog::spec::mcf();
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        let swap_at = 7;
        let plan = FaultPlan::uniform(33, 0.4)
            .with_crash(swap_at)
            .with_crash(19);
        // run_supervised_with_swap strips crash points, so the same plan
        // doubles as the uninterrupted baseline.
        let base = exp
            .run_supervised_with_swap(
                &wl,
                SupervisorConfig::default(),
                Some(plan.clone()),
                swap_at,
                None,
            )
            .unwrap();
        let run = exp
            .run_unified(
                &wl,
                UnifiedOptions {
                    sup_cfg: Some(SupervisorConfig::default()),
                    plan: Some(plan),
                    swap: Some(SwapSpec {
                        at_step: swap_at,
                        scheme: None,
                    }),
                    recovery: Some(RecoveryOptions {
                        checkpoint_interval: 5,
                    }),
                    serving: None,
                },
            )
            .unwrap();
        assert_eq!(run.recovery.crashes, 2, "both crashes must fire");
        assert_eq!(run.recovery.recoveries, 2);
        assert_eq!(run.recovery.replay_divergences, 0, "replay diverged");
        assert_eq!(run.recovery.invariant_violations, 0);
        assert!(
            run.report.bit_identical(&base),
            "crash during the swap window perturbed the run"
        );
    }

    #[test]
    fn unified_swap_with_recovery_on_raw_engine_matches_plain_swap() {
        // Swap + recovery composes on the raw engine too: the automaton
        // lives in the engine, not the supervisor.
        let wl = catalog::spec::mcf();
        let exp = Experiment::new(Scheme::DecoupledHeuristic)
            .unwrap()
            .with_options(quick_options());
        let swap_at = 6;
        let run = exp
            .run_unified(
                &wl,
                UnifiedOptions {
                    sup_cfg: None,
                    plan: Some(FaultPlan::uniform(9, 0.0).with_crash(swap_at)),
                    swap: Some(SwapSpec {
                        at_step: swap_at,
                        scheme: None,
                    }),
                    recovery: Some(RecoveryOptions {
                        checkpoint_interval: 4,
                    }),
                    serving: None,
                },
            )
            .unwrap();
        assert_eq!(run.recovery.crashes, 1);
        assert_eq!(run.recovery.replay_divergences, 0);
        assert_eq!(run.recovery.invariant_violations, 0);
        // Zero-change swap + zero-severity plan: bit-identical to a plain
        // run of the same scheme.
        let base = exp.run(&wl).unwrap();
        assert_eq!(
            run.report.metrics.energy_joules.to_bits(),
            base.metrics.energy_joules.to_bits()
        );
        assert_eq!(
            run.report.metrics.delay_seconds.to_bits(),
            base.metrics.delay_seconds.to_bits()
        );
    }

    #[test]
    fn instance_swap_plus_recovery_is_a_typed_error() {
        let wl = catalog::spec::mcf();
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        let next = Scheme::DecoupledHeuristic
            .instantiate(exp.design(), exp.options.limits)
            .unwrap();
        let err = exp
            .run_unified_impl(
                &wl,
                UnifiedOptions {
                    sup_cfg: Some(SupervisorConfig::default()),
                    plan: None,
                    swap: Some(SwapSpec {
                        at_step: 4,
                        scheme: None,
                    }),
                    recovery: Some(RecoveryOptions::default()),
                    serving: None,
                },
                Some(next),
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                Error::NoSolution {
                    op: "run_unified",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    fn serving_options(spec: ServingSpec) -> UnifiedOptions {
        UnifiedOptions {
            sup_cfg: Some(SupervisorConfig::default()),
            plan: None,
            swap: None,
            recovery: None,
            serving: Some(spec),
        }
    }

    #[test]
    fn serving_runs_are_deterministic_and_report_slo() {
        let wl = catalog::spec::mcf();
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        let spec = ServingSpec::default();
        let a = exp.run_unified(&wl, serving_options(spec.clone())).unwrap();
        let b = exp.run_unified(&wl, serving_options(spec)).unwrap();
        assert!(
            a.report.bit_identical(&b.report),
            "same serving spec must reproduce exactly"
        );
        let slo = a.report.slo.expect("serving run carries an SLO report");
        assert!(slo.offered > 0, "open-loop traffic never arrived");
        assert!(slo.completed > 0, "nothing was served");
        assert!(slo.offered >= slo.admitted);
        assert!(slo.p99_s >= slo.p95_s);
        // A batch run of the same scheme carries no SLO report. (Its
        // bit-identity against the pre-serving runtime is covered by
        // `zero_severity_supervised_run_is_bit_identical_to_baseline` —
        // an *attached* serving layer legitimately changes actuations,
        // because tail latency is now a controlled output.)
        let batch = exp.run(&wl).unwrap();
        assert!(batch.slo.is_none());
    }

    #[test]
    fn sustained_overload_sheds_without_invariant_violations() {
        // ~8 GIPS offered against a ~3 GIPS board: the governor must shed.
        let wl = catalog::spec::mcf();
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        let spec = ServingSpec {
            traffic: TrafficConfig {
                load_factor: 2.0,
                service_mean_gi: 0.1,
                ..Default::default()
            },
            ..Default::default()
        };
        let run = exp.run_unified(&wl, serving_options(spec)).unwrap();
        let slo = run.report.slo.unwrap();
        assert!(slo.max_shed_frac > 0.0, "overload never engaged shedding");
        assert!(slo.dropped() > 0);
        assert!(slo.violation_frac > 0.0);
        let sup = run.report.supervisor.unwrap();
        assert!(sup.shed_engagements >= 1);
        assert_eq!(sup.invariant_violations, 0);
        assert_eq!(run.report.actuation.double_actuations, 0);
    }

    #[test]
    fn external_cap_interference_worsens_tail_latency() {
        // The destructive-interference cell: an external governor caps the
        // big cluster while the OS layer scales up — tail latency must be
        // strictly worse than the uncapped twin.
        let wl = catalog::spec::mcf();
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        let near_capacity = TrafficConfig {
            load_factor: 1.2,
            service_mean_gi: 0.05,
            ..Default::default()
        };
        let free = exp
            .run_unified(
                &wl,
                serving_options(ServingSpec {
                    traffic: near_capacity,
                    ..Default::default()
                }),
            )
            .unwrap();
        let capped = exp
            .run_unified(
                &wl,
                serving_options(ServingSpec {
                    traffic: near_capacity,
                    ext_cap_f_big: Some(0.6),
                    ..Default::default()
                }),
            )
            .unwrap();
        let sf = free.report.slo.unwrap();
        let sc = capped.report.slo.unwrap();
        assert!(
            sc.p99_s > sf.p99_s,
            "capped p99 {} vs free p99 {}",
            sc.p99_s,
            sf.p99_s
        );
        assert!(sc.violation_frac >= sf.violation_frac);
        // The cap is strictly a capper: no invariant violations either way.
        assert_eq!(capped.report.supervisor.unwrap().invariant_violations, 0);
    }

    #[test]
    fn crash_recovery_with_serving_is_bit_identical() {
        // A crash mid-run must roll back traffic RNG, queue state, and the
        // shed fraction together: the recovered report is bit-identical to
        // the uninterrupted serving twin.
        let wl = catalog::spec::mcf();
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        let spec = ServingSpec {
            traffic: TrafficConfig {
                load_factor: 2.0,
                service_mean_gi: 0.1,
                ..Default::default()
            },
            ..Default::default()
        };
        let base = exp
            .run_unified(
                &wl,
                UnifiedOptions {
                    sup_cfg: Some(SupervisorConfig::default()),
                    plan: Some(FaultPlan::uniform(5, 0.3)),
                    swap: None,
                    recovery: None,
                    serving: Some(spec.clone()),
                },
            )
            .unwrap();
        let run = exp
            .run_unified(
                &wl,
                UnifiedOptions {
                    sup_cfg: Some(SupervisorConfig::default()),
                    plan: Some(FaultPlan::uniform(5, 0.3).with_crash(9)),
                    swap: None,
                    recovery: Some(RecoveryOptions {
                        checkpoint_interval: 4,
                    }),
                    serving: Some(spec),
                },
            )
            .unwrap();
        assert_eq!(run.recovery.crashes, 1);
        assert_eq!(run.recovery.replay_divergences, 0);
        assert!(
            run.report.bit_identical(&base.report),
            "crash recovery perturbed the serving layer"
        );
    }

    #[test]
    fn degenerate_serving_specs_are_rejected_with_typed_errors() {
        let wl = catalog::spec::mcf();
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        for spec in [
            ServingSpec {
                traffic: TrafficConfig {
                    base_rate_rps: -1.0,
                    ..Default::default()
                },
                ..Default::default()
            },
            ServingSpec {
                queue: QueueConfig {
                    timeout_s: f64::NAN,
                    ..Default::default()
                },
                ..Default::default()
            },
            ServingSpec {
                ext_cap_f_big: Some(-0.5),
                ..Default::default()
            },
        ] {
            let err = exp.run_unified(&wl, serving_options(spec)).unwrap_err();
            assert!(
                matches!(
                    err,
                    Error::NoSolution {
                        op: "serving_spec",
                        ..
                    }
                ),
                "{err:?}"
            );
        }
    }

    /// A workload with one hard mid-run phase change: a compute-bound
    /// 8-thread phase, then a memory-bound 2-thread phase with very
    /// different IPC — the plant the deployed model was identified against
    /// effectively changes underneath the controller.
    fn phase_change_workload() -> Workload {
        use yukta_workloads::{App, PhaseSpec, Suite};
        Workload::single(App {
            name: "phase-change".into(),
            suite: Suite::Parsec,
            slots: 8,
            phases: vec![
                PhaseSpec {
                    name: "compute".into(),
                    threads: 8,
                    work_gi: 220.0,
                    mem_intensity: 0.05,
                    ipc_big: 1.10,
                    ipc_little: 1.00,
                },
                PhaseSpec {
                    name: "memory".into(),
                    threads: 2,
                    work_gi: 60.0,
                    mem_intensity: 0.90,
                    ipc_big: 0.45,
                    ipc_little: 0.40,
                },
            ],
        })
    }

    #[test]
    fn monitored_run_is_bit_identical_to_supervised() {
        let wl = catalog::spec::mcf();
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        let base = exp
            .run_supervised(&wl, SupervisorConfig::default(), None)
            .unwrap();
        let (monitored, stats) = exp
            .run_monitored(
                &wl,
                SupervisorConfig::default(),
                None,
                HealthConfig::default(),
            )
            .unwrap();
        assert!(
            monitored.bit_identical(&base),
            "health monitoring perturbed the run"
        );
        assert_eq!(stats.samples, monitored.trace.samples.len() as u64);
        assert!(stats.residual_mean.is_finite());
    }

    #[test]
    fn invalid_health_config_is_rejected_with_typed_error() {
        let wl = catalog::spec::mcf();
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        let err = exp
            .run_monitored(
                &wl,
                SupervisorConfig::default(),
                None,
                HealthConfig {
                    warmup: 0,
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                Error::NoSolution {
                    op: "health_config",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn adaptive_run_completes_a_detect_refit_swap_cycle() {
        let wl = phase_change_workload();
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        let run = exp
            .run_adaptive(
                &wl,
                AdaptiveOptions {
                    initial: Some(Scheme::DecoupledHeuristic),
                    max_swaps: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(run.report.metrics.completed, "adaptive run timed out");
        assert_eq!(run.invariant_violations, 0, "swap violated the automaton");
        assert_eq!(
            run.cycles.len(),
            1,
            "expected one detect→swap cycle, alarms = {}",
            run.health.alarms
        );
        let cycle = run.cycles[0];
        assert_eq!(cycle.swap_step, cycle.detect_step + 1);
        assert!(run.health.alarms >= 1);
    }

    #[test]
    fn adaptive_run_on_stationary_workload_never_swaps() {
        let wl = catalog::spec::mcf();
        let exp = Experiment::new(Scheme::CoordinatedHeuristic)
            .unwrap()
            .with_options(quick_options());
        let run = exp.run_adaptive(&wl, AdaptiveOptions::default()).unwrap();
        assert!(run.report.metrics.completed);
        assert!(
            run.cycles.is_empty(),
            "false-positive swap at step {:?}",
            run.cycles.first().map(|c| c.detect_step)
        );
        assert_eq!(run.invariant_violations, 0);
    }
}
