//! LQG baselines of Section VI-B.
//!
//! LQG controllers cannot take external signals, so only two multilayer
//! arrangements exist: fully decoupled per-layer controllers, or one
//! monolithic controller spanning both layers (the configuration of the
//! paper's ISCA'16 predecessor). Both also lack output bounds,
//! quantization awareness, and uncertainty guardbands — the gap the
//! evaluation quantifies.

use yukta_control::lqg::LqgTracker;
use yukta_linalg::Result;

use crate::controllers::{ControllerState, HwPolicy, HwSense, OsPolicy, OsSense};
use crate::optimizer::{HwOptimizer, OsOptimizer};
use crate::signals::{ActuatorGrids, HwInputs, HwOutputs, OsInputs, OsOutputs, SignalRanges};

/// Decoupled hardware-layer LQG controller (no external signals).
#[derive(Debug, Clone)]
pub struct LqgHwController {
    tracker: LqgTracker,
    ranges: SignalRanges,
    grids: ActuatorGrids,
    optimizer: HwOptimizer,
    targets: HwOutputs,
}

impl LqgHwController {
    /// Deploys a tracker designed on the hardware-only model (4 inputs →
    /// 4 outputs, normalized).
    ///
    /// # Panics
    ///
    /// Panics if the tracker's plant is not 4×4.
    pub fn new(tracker: LqgTracker, optimizer: HwOptimizer) -> Self {
        assert_eq!(tracker.plant().n_inputs(), 4, "hw LQG inputs");
        assert_eq!(tracker.plant().n_outputs(), 4, "hw LQG outputs");
        LqgHwController {
            tracker,
            ranges: SignalRanges::xu3(),
            grids: ActuatorGrids::xu3(),
            optimizer,
            targets: HwOutputs::default(),
        }
    }
}

impl HwPolicy for LqgHwController {
    fn invoke(&mut self, sense: &HwSense) -> Result<HwInputs> {
        self.targets = self.optimizer.update(&sense.outputs);
        let r = self.ranges.norm_hw_outputs(&self.targets);
        let y = self.ranges.norm_hw_outputs(&sense.outputs);
        let u = self.tracker.step(&r, &y)?;
        // LQG is quantization-blind: it emits continuous commands; the
        // board saturates/snaps them. Feed the snapped values back so the
        // estimator at least tracks reality.
        let out = HwInputs {
            big_cores: self
                .grids
                .big_cores
                .quantize(self.ranges.cores.denormalize(u[0])),
            little_cores: self
                .grids
                .little_cores
                .quantize(self.ranges.cores.denormalize(u[1])),
            f_big: self
                .grids
                .f_big
                .quantize(self.ranges.f_big.denormalize(u[2])),
            f_little: self
                .grids
                .f_little
                .quantize(self.ranges.f_little.denormalize(u[3])),
        };
        let applied = self.ranges.norm_hw_inputs(&out);
        self.tracker.set_applied_input(&applied)?;
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "hw-lqg"
    }

    fn reset(&mut self) {
        self.tracker.reset();
    }

    /// Floats: tracker state, then the 4 targets, then the optimizer
    /// payload. Ints: the optimizer's ints.
    fn save_state(&self) -> ControllerState {
        let mut s = ControllerState::stateless(self.name());
        s.floats.extend_from_slice(&self.tracker.save_state());
        s.floats.extend_from_slice(&self.targets.to_vec());
        self.optimizer.save_state(&mut s.floats, &mut s.ints);
        s
    }

    fn restore_state(&mut self, state: &ControllerState) -> Result<()> {
        let n = self.tracker.state_len();
        state.check(
            self.name(),
            n + 4 + HwOptimizer::STATE_FLOATS,
            HwOptimizer::STATE_INTS,
        )?;
        self.tracker.restore_state(&state.floats[..n])?;
        self.targets = HwOutputs {
            perf: state.floats[n],
            p_big: state.floats[n + 1],
            p_little: state.floats[n + 2],
            temp: state.floats[n + 3],
        };
        self.optimizer
            .restore_state(&state.floats[n + 4..], &state.ints);
        Ok(())
    }
}

/// Decoupled software-layer LQG controller (no external signals).
#[derive(Debug, Clone)]
pub struct LqgOsController {
    tracker: LqgTracker,
    ranges: SignalRanges,
    grids: ActuatorGrids,
    optimizer: OsOptimizer,
    targets: OsOutputs,
}

impl LqgOsController {
    /// Deploys a tracker designed on the software-only model (3 inputs →
    /// 3 outputs, normalized).
    ///
    /// # Panics
    ///
    /// Panics if the tracker's plant is not 3×3.
    pub fn new(tracker: LqgTracker, optimizer: OsOptimizer) -> Self {
        assert_eq!(tracker.plant().n_inputs(), 3, "os LQG inputs");
        assert_eq!(tracker.plant().n_outputs(), 3, "os LQG outputs");
        LqgOsController {
            tracker,
            ranges: SignalRanges::xu3(),
            grids: ActuatorGrids::xu3(),
            optimizer,
            targets: OsOutputs::default(),
        }
    }
}

impl OsPolicy for LqgOsController {
    fn invoke(&mut self, sense: &OsSense) -> Result<OsInputs> {
        self.targets = self.optimizer.update(&sense.outputs, &sense.system);
        let r = self.ranges.norm_os_outputs(&self.targets);
        let y = self.ranges.norm_os_outputs(&sense.outputs);
        let u = self.tracker.step(&r, &y)?;
        let tb = self
            .grids
            .threads_big
            .quantize(self.ranges.threads_big.denormalize(u[0]))
            .min(sense.active_threads as f64);
        let out = OsInputs {
            threads_big: tb,
            packing_big: self
                .grids
                .packing
                .quantize(self.ranges.packing.denormalize(u[1])),
            packing_little: self
                .grids
                .packing
                .quantize(self.ranges.packing.denormalize(u[2])),
        };
        let applied = self.ranges.norm_os_inputs(&out);
        self.tracker.set_applied_input(&applied)?;
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "os-lqg"
    }

    fn reset(&mut self) {
        self.tracker.reset();
    }

    /// Floats: tracker state, then the 3 targets, then the optimizer
    /// payload. Ints: the optimizer's ints.
    fn save_state(&self) -> ControllerState {
        let mut s = ControllerState::stateless(self.name());
        s.floats.extend_from_slice(&self.tracker.save_state());
        s.floats.extend_from_slice(&self.targets.to_vec());
        self.optimizer.save_state(&mut s.floats, &mut s.ints);
        s
    }

    fn restore_state(&mut self, state: &ControllerState) -> Result<()> {
        let n = self.tracker.state_len();
        state.check(
            self.name(),
            n + 3 + OsOptimizer::STATE_FLOATS,
            OsOptimizer::STATE_INTS,
        )?;
        self.tracker.restore_state(&state.floats[..n])?;
        self.targets = OsOutputs {
            perf_little: state.floats[n],
            perf_big: state.floats[n + 1],
            spare_diff: state.floats[n + 2],
        };
        self.optimizer
            .restore_state(&state.floats[n + 3..], &state.ints);
        Ok(())
    }
}

/// Monolithic LQG controller spanning both layers: one tracker over the
/// joint 7-input, 7-output model (the configuration of the paper's reference \[35\]).
#[derive(Debug, Clone)]
pub struct MonolithicLqg {
    tracker: LqgTracker,
    ranges: SignalRanges,
    grids: ActuatorGrids,
    hw_optimizer: HwOptimizer,
    os_optimizer: OsOptimizer,
    hw_targets: HwOutputs,
    os_targets: OsOutputs,
}

impl MonolithicLqg {
    /// Deploys a tracker designed on the joint model: inputs
    /// `[u_hw(4); u_os(3)]`, outputs `[y_hw(4); y_os(3)]`, normalized.
    ///
    /// # Panics
    ///
    /// Panics if the tracker's plant is not 7×7.
    pub fn new(tracker: LqgTracker, hw_optimizer: HwOptimizer, os_optimizer: OsOptimizer) -> Self {
        assert_eq!(tracker.plant().n_inputs(), 7, "monolithic LQG inputs");
        assert_eq!(tracker.plant().n_outputs(), 7, "monolithic LQG outputs");
        MonolithicLqg {
            tracker,
            ranges: SignalRanges::xu3(),
            grids: ActuatorGrids::xu3(),
            hw_optimizer,
            os_optimizer,
            hw_targets: HwOutputs::default(),
            os_targets: OsOutputs::default(),
        }
    }

    /// One joint invocation over both layers' sensors; returns the full
    /// cross-layer actuation.
    ///
    /// # Errors
    ///
    /// Same contract as [`HwPolicy::invoke`](crate::controllers::HwPolicy::invoke).
    pub fn invoke(&mut self, hw: &HwSense, os: &OsSense) -> Result<(HwInputs, OsInputs)> {
        self.hw_targets = self.hw_optimizer.update(&hw.outputs);
        self.os_targets = self.os_optimizer.update(&os.outputs, &hw.outputs);
        let rh = self.ranges.norm_hw_outputs(&self.hw_targets);
        let ro = self.ranges.norm_os_outputs(&self.os_targets);
        let yh = self.ranges.norm_hw_outputs(&hw.outputs);
        let yo = self.ranges.norm_os_outputs(&os.outputs);
        let r = [rh[0], rh[1], rh[2], rh[3], ro[0], ro[1], ro[2]];
        let y = [yh[0], yh[1], yh[2], yh[3], yo[0], yo[1], yo[2]];
        let u = self.tracker.step(&r, &y)?;
        let hw_out = HwInputs {
            big_cores: self
                .grids
                .big_cores
                .quantize(self.ranges.cores.denormalize(u[0])),
            little_cores: self
                .grids
                .little_cores
                .quantize(self.ranges.cores.denormalize(u[1])),
            f_big: self
                .grids
                .f_big
                .quantize(self.ranges.f_big.denormalize(u[2])),
            f_little: self
                .grids
                .f_little
                .quantize(self.ranges.f_little.denormalize(u[3])),
        };
        let tb = self
            .grids
            .threads_big
            .quantize(self.ranges.threads_big.denormalize(u[4]))
            .min(os.active_threads as f64);
        let os_out = OsInputs {
            threads_big: tb,
            packing_big: self
                .grids
                .packing
                .quantize(self.ranges.packing.denormalize(u[5])),
            packing_little: self
                .grids
                .packing
                .quantize(self.ranges.packing.denormalize(u[6])),
        };
        let hwn = self.ranges.norm_hw_inputs(&hw_out);
        let osn = self.ranges.norm_os_inputs(&os_out);
        self.tracker
            .set_applied_input(&[hwn[0], hwn[1], hwn[2], hwn[3], osn[0], osn[1], osn[2]])?;
        Ok((hw_out, os_out))
    }

    /// Clears the tracker's estimator/integrator state.
    pub fn reset(&mut self) {
        self.tracker.reset();
    }

    /// Snapshots the joint controller: tracker state, then the 4 hardware
    /// targets, the 3 software targets, and both optimizers' payloads
    /// (hardware first).
    pub fn save_state(&self) -> ControllerState {
        let mut s = ControllerState::stateless("monolithic-lqg");
        s.floats.extend_from_slice(&self.tracker.save_state());
        s.floats.extend_from_slice(&self.hw_targets.to_vec());
        s.floats.extend_from_slice(&self.os_targets.to_vec());
        self.hw_optimizer.save_state(&mut s.floats, &mut s.ints);
        self.os_optimizer.save_state(&mut s.floats, &mut s.ints);
        s
    }

    /// Restores a snapshot taken by [`MonolithicLqg::save_state`]; same
    /// bit-identity contract as
    /// [`HwPolicy::restore_state`](crate::controllers::HwPolicy::restore_state).
    ///
    /// # Errors
    ///
    /// [`yukta_linalg::Error::NoSolution`] on tag or shape mismatch.
    pub fn restore_state(&mut self, state: &ControllerState) -> Result<()> {
        let n = self.tracker.state_len();
        state.check(
            "monolithic-lqg",
            n + 7 + HwOptimizer::STATE_FLOATS + OsOptimizer::STATE_FLOATS,
            HwOptimizer::STATE_INTS + OsOptimizer::STATE_INTS,
        )?;
        self.tracker.restore_state(&state.floats[..n])?;
        self.hw_targets = HwOutputs {
            perf: state.floats[n],
            p_big: state.floats[n + 1],
            p_little: state.floats[n + 2],
            temp: state.floats[n + 3],
        };
        self.os_targets = OsOutputs {
            perf_little: state.floats[n + 4],
            perf_big: state.floats[n + 5],
            spare_diff: state.floats[n + 6],
        };
        let f = &state.floats[n + 7..];
        self.hw_optimizer
            .restore_state(&f[..HwOptimizer::STATE_FLOATS], &state.ints[..1]);
        self.os_optimizer
            .restore_state(&f[HwOptimizer::STATE_FLOATS..], &state.ints[1..]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::Limits;
    use yukta_control::lqg::LqgWeights;
    use yukta_control::ss::StateSpace;
    use yukta_linalg::Mat;

    /// A stable normalized test model with n inputs and n outputs.
    fn model(n: usize) -> StateSpace {
        let mut a = Mat::zeros(n, n);
        let mut b = Mat::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 0.6;
            b[(i, i)] = 0.3;
            if i + 1 < n {
                a[(i, i + 1)] = 0.05;
                b[(i, (i + 1) % n)] = 0.05;
            }
        }
        StateSpace::new(a, b, Mat::identity(n), Mat::zeros(n, n), Some(0.5)).unwrap()
    }

    fn hw_sense() -> HwSense {
        HwSense {
            outputs: HwOutputs {
                perf: 3.0,
                p_big: 2.0,
                p_little: 0.2,
                temp: 60.0,
            },
            ext: OsInputs {
                threads_big: 4.0,
                packing_big: 1.0,
                packing_little: 1.0,
            },
            current: HwInputs {
                big_cores: 4.0,
                little_cores: 4.0,
                f_big: 1.0,
                f_little: 1.0,
            },
            active_threads: 8,
            slo: Default::default(),
            limits: Limits::default(),
        }
    }

    fn os_sense() -> OsSense {
        OsSense {
            outputs: OsOutputs {
                perf_little: 0.3,
                perf_big: 2.0,
                spare_diff: 0.0,
            },
            ext: HwInputs {
                big_cores: 4.0,
                little_cores: 4.0,
                f_big: 1.0,
                f_little: 1.0,
            },
            current: OsInputs {
                threads_big: 4.0,
                packing_big: 1.0,
                packing_little: 1.0,
            },
            active_threads: 8,
            system: HwOutputs {
                perf: 3.0,
                p_big: 2.0,
                p_little: 0.2,
                temp: 60.0,
            },
            slo: Default::default(),
            limits: Limits::default(),
        }
    }

    #[test]
    fn hw_lqg_emits_grid_values() {
        let tracker = LqgTracker::design(&model(4), LqgWeights::default()).unwrap();
        let mut c = LqgHwController::new(tracker, HwOptimizer::new(Limits::default()));
        let u = c.invoke(&hw_sense()).unwrap();
        let g = ActuatorGrids::xu3();
        assert_eq!(g.f_big.quantize(u.f_big), u.f_big);
        assert!((0.2..=2.0).contains(&u.f_big));
    }

    #[test]
    fn os_lqg_respects_active_thread_count() {
        let tracker = LqgTracker::design(&model(3), LqgWeights::default()).unwrap();
        let mut c = LqgOsController::new(tracker, OsOptimizer::new());
        let mut s = os_sense();
        s.active_threads = 1;
        let u = c.invoke(&s).unwrap();
        assert!(u.threads_big <= 1.0);
    }

    #[test]
    fn monolithic_lqg_actuates_both_layers() {
        let tracker = LqgTracker::design(&model(7), LqgWeights::default()).unwrap();
        let mut c = MonolithicLqg::new(
            tracker,
            HwOptimizer::new(Limits::default()),
            OsOptimizer::new(),
        );
        let (hw, os) = c.invoke(&hw_sense(), &os_sense()).unwrap();
        assert!((1.0..=4.0).contains(&hw.big_cores));
        assert!((0.0..=8.0).contains(&os.threads_big));
    }

    #[test]
    fn save_restore_roundtrips_lqg_controllers_bit_for_bit() {
        let tracker = LqgTracker::design(&model(4), LqgWeights::default()).unwrap();
        let mut hw = LqgHwController::new(tracker, HwOptimizer::new(Limits::default()));
        for _ in 0..6 {
            hw.invoke(&hw_sense()).unwrap();
        }
        let snap = hw.save_state();
        let mut twin = hw.clone();
        for _ in 0..9 {
            hw.invoke(&hw_sense()).unwrap();
        }
        hw.restore_state(&snap).unwrap();
        let a = hw.invoke(&hw_sense()).unwrap();
        let b = twin.invoke(&hw_sense()).unwrap();
        for (x, y) in a.to_vec().iter().zip(&b.to_vec()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }

        let tracker = LqgTracker::design(&model(7), LqgWeights::default()).unwrap();
        let mut mono = MonolithicLqg::new(
            tracker,
            HwOptimizer::new(Limits::default()),
            OsOptimizer::new(),
        );
        for _ in 0..5 {
            mono.invoke(&hw_sense(), &os_sense()).unwrap();
        }
        let snap = mono.save_state();
        let mut twin = mono.clone();
        for _ in 0..4 {
            mono.invoke(&hw_sense(), &os_sense()).unwrap();
        }
        mono.restore_state(&snap).unwrap();
        let (ah, ao) = mono.invoke(&hw_sense(), &os_sense()).unwrap();
        let (bh, bo) = twin.invoke(&hw_sense(), &os_sense()).unwrap();
        assert_eq!(ah.f_big.to_bits(), bh.f_big.to_bits());
        assert_eq!(ao.threads_big.to_bits(), bo.threads_big.to_bits());
        // Cross-policy snapshots are rejected.
        assert!(
            mono.restore_state(&ControllerState::stateless("hw-lqg"))
                .is_err()
        );
    }

    #[test]
    fn wrong_model_shape_panics() {
        let tracker = LqgTracker::design(&model(3), LqgWeights::default()).unwrap();
        let result = std::panic::catch_unwind(move || {
            LqgHwController::new(tracker, HwOptimizer::new(Limits::default()))
        });
        assert!(result.is_err());
    }
}
