//! Controller interfaces and implementations.
//!
//! Each layer's controller sees only its own sensors plus the *external
//! signals* the other layer exposes through the agreed interface
//! (Section III-C): the hardware controller reads what the OS actuates
//! (thread distribution) and vice versa (core counts and frequencies).

pub mod heuristic;
pub mod lqg_ctl;
pub mod ssv;

use yukta_linalg::Result;

use crate::signals::{HwInputs, HwOutputs, Limits, OsInputs, OsOutputs};

/// Everything the hardware-layer controller can observe at one invocation.
#[derive(Debug, Clone, Copy)]
pub struct HwSense {
    /// Measured outputs (Table II).
    pub outputs: HwOutputs,
    /// External signals from the OS layer (its actuated inputs).
    pub ext: OsInputs,
    /// The hardware operating point currently in force.
    pub current: HwInputs,
    /// Active application threads (part of the coordination interface; on
    /// the real board this is visible to the privileged controller
    /// process).
    pub active_threads: usize,
    /// The constraint limits.
    pub limits: Limits,
}

/// Everything the software-layer controller can observe at one invocation.
#[derive(Debug, Clone, Copy)]
pub struct OsSense {
    /// Measured outputs (Table III).
    pub outputs: OsOutputs,
    /// External signals from the hardware layer (its actuated inputs).
    pub ext: HwInputs,
    /// The placement currently in force.
    pub current: OsInputs,
    /// Active application threads.
    pub active_threads: usize,
    /// System measurements available to the optimizer (the OS reads the
    /// same power/temperature sysfs files as the hardware layer).
    pub system: HwOutputs,
    /// The constraint limits.
    pub limits: Limits,
}

/// A hardware-layer policy: chooses the next operating point every 500 ms.
pub trait HwPolicy {
    /// One controller invocation.
    ///
    /// # Errors
    ///
    /// Model-based policies surface numerical failures (shape mismatches,
    /// non-finite intermediates) as typed errors instead of panicking; the
    /// supervisor reacts by falling back to a heuristic.
    fn invoke(&mut self, sense: &HwSense) -> Result<HwInputs>;

    /// Scheme-facing label.
    fn name(&self) -> &'static str;

    /// Clears all internal controller state (default: stateless, no-op).
    /// The supervisor calls this before re-engaging a demoted controller so
    /// stale estimates from the faulty episode cannot leak forward.
    fn reset(&mut self) {}
}

/// A software-layer policy: chooses the next thread placement every 500 ms.
pub trait OsPolicy {
    /// One controller invocation.
    ///
    /// # Errors
    ///
    /// Same contract as [`HwPolicy::invoke`].
    fn invoke(&mut self, sense: &OsSense) -> Result<OsInputs>;

    /// Scheme-facing label.
    fn name(&self) -> &'static str;

    /// Clears all internal controller state (default: stateless, no-op).
    fn reset(&mut self) {}
}
