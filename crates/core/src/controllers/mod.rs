//! Controller interfaces and implementations.
//!
//! Each layer's controller sees only its own sensors plus the *external
//! signals* the other layer exposes through the agreed interface
//! (Section III-C): the hardware controller reads what the OS actuates
//! (thread distribution) and vice versa (core counts and frequencies).

pub mod heuristic;
pub mod lqg_ctl;
pub mod ssv;

use yukta_linalg::{Error, Result};

use crate::signals::{HwInputs, HwOutputs, Limits, OsInputs, OsOutputs, SloSense};

/// A flat, policy-agnostic snapshot of one controller's internal state,
/// produced by [`HwPolicy::save_state`]/[`OsPolicy::save_state`] and
/// consumed by the matching `restore_state`. Checkpoints built from these
/// snapshots make crashed runs resumable with bit-identical behaviour.
///
/// The `tag` pins the snapshot to the policy that produced it (a
/// [`crate::supervisor::Supervisor`] checkpoint can only be restored into
/// the same scheme); `floats`/`ints` carry the policy-defined payload in a
/// fixed documented order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ControllerState {
    /// The producing policy's [`HwPolicy::name`]/[`OsPolicy::name`].
    pub tag: &'static str,
    /// Real-valued state (estimator vectors, EMA trackers, targets…).
    pub floats: Vec<f64>,
    /// Integer state (flags, counters, tick counts).
    pub ints: Vec<i64>,
}

impl ControllerState {
    /// An empty snapshot tagged with the producing policy's name.
    pub fn stateless(tag: &'static str) -> Self {
        ControllerState {
            tag,
            floats: Vec::new(),
            ints: Vec::new(),
        }
    }

    /// Validates the snapshot's provenance and payload shape before a
    /// restore.
    ///
    /// # Errors
    ///
    /// [`Error::NoSolution`] if the tag names a different policy or the
    /// payload lengths do not match what that policy saves.
    pub fn check(&self, tag: &'static str, n_floats: usize, n_ints: usize) -> Result<()> {
        if self.tag != tag {
            return Err(Error::NoSolution {
                op: "controller_restore_state",
                why: "snapshot tag names a different policy",
            });
        }
        if self.floats.len() != n_floats || self.ints.len() != n_ints {
            return Err(Error::NoSolution {
                op: "controller_restore_state",
                why: "snapshot payload length mismatch",
            });
        }
        Ok(())
    }
}

/// Everything the hardware-layer controller can observe at one invocation.
#[derive(Debug, Clone, Copy)]
pub struct HwSense {
    /// Measured outputs (Table II).
    pub outputs: HwOutputs,
    /// External signals from the OS layer (its actuated inputs).
    pub ext: OsInputs,
    /// The hardware operating point currently in force.
    pub current: HwInputs,
    /// Active application threads (part of the coordination interface; on
    /// the real board this is visible to the privileged controller
    /// process).
    pub active_threads: usize,
    /// Serving-layer tail-latency observation (inactive on batch runs).
    pub slo: SloSense,
    /// The constraint limits.
    pub limits: Limits,
}

/// Everything the software-layer controller can observe at one invocation.
#[derive(Debug, Clone, Copy)]
pub struct OsSense {
    /// Measured outputs (Table III).
    pub outputs: OsOutputs,
    /// External signals from the hardware layer (its actuated inputs).
    pub ext: HwInputs,
    /// The placement currently in force.
    pub current: OsInputs,
    /// Active application threads.
    pub active_threads: usize,
    /// System measurements available to the optimizer (the OS reads the
    /// same power/temperature sysfs files as the hardware layer).
    pub system: HwOutputs,
    /// Serving-layer tail-latency observation (inactive on batch runs).
    pub slo: SloSense,
    /// The constraint limits.
    pub limits: Limits,
}

/// A hardware-layer policy: chooses the next operating point every 500 ms.
pub trait HwPolicy {
    /// One controller invocation.
    ///
    /// # Errors
    ///
    /// Model-based policies surface numerical failures (shape mismatches,
    /// non-finite intermediates) as typed errors instead of panicking; the
    /// supervisor reacts by falling back to a heuristic.
    fn invoke(&mut self, sense: &HwSense) -> Result<HwInputs>;

    /// Scheme-facing label.
    fn name(&self) -> &'static str;

    /// Clears all internal controller state (default: stateless, no-op).
    /// The supervisor calls this before re-engaging a demoted controller so
    /// stale estimates from the faulty episode cannot leak forward.
    fn reset(&mut self) {}

    /// Snapshots the complete internal state for a checkpoint (default:
    /// stateless, an empty tagged snapshot).
    fn save_state(&self) -> ControllerState {
        ControllerState::stateless(self.name())
    }

    /// Restores a snapshot taken by [`HwPolicy::save_state`]. After a
    /// restore the policy must reproduce subsequent invocations
    /// bit-identically to the checkpointed instance.
    ///
    /// # Errors
    ///
    /// [`Error::NoSolution`] if the snapshot came from a different policy
    /// or has the wrong payload shape.
    fn restore_state(&mut self, state: &ControllerState) -> Result<()> {
        state.check(self.name(), 0, 0)
    }
}

/// A software-layer policy: chooses the next thread placement every 500 ms.
pub trait OsPolicy {
    /// One controller invocation.
    ///
    /// # Errors
    ///
    /// Same contract as [`HwPolicy::invoke`].
    fn invoke(&mut self, sense: &OsSense) -> Result<OsInputs>;

    /// Scheme-facing label.
    fn name(&self) -> &'static str;

    /// Clears all internal controller state (default: stateless, no-op).
    fn reset(&mut self) {}

    /// Snapshots the complete internal state for a checkpoint (default:
    /// stateless, an empty tagged snapshot).
    fn save_state(&self) -> ControllerState {
        ControllerState::stateless(self.name())
    }

    /// Restores a snapshot taken by [`OsPolicy::save_state`]. Same
    /// contract as [`HwPolicy::restore_state`].
    ///
    /// # Errors
    ///
    /// [`Error::NoSolution`] if the snapshot came from a different policy
    /// or has the wrong payload shape.
    fn restore_state(&mut self, state: &ControllerState) -> Result<()> {
        state.check(self.name(), 0, 0)
    }
}
