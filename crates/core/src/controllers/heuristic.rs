//! The heuristic baselines of Table IV.
//!
//! *Coordinated heuristic* models the industry-standard stack on
//! big.LITTLE boards: an HMP-style scheduler that places demanding threads
//! big-first using the number/type/frequency of available cores, plus a
//! hardware governor that climbs frequency and core count while operation
//! is safe, sized by the observed thread distribution.
//!
//! *Decoupled heuristic* removes all coordination: the OS round-robins
//! threads over every core, and the hardware governor behaves like the
//! Linux `performance` governor — everything at maximum until a limit
//! trips, then a threshold-based backoff that ignores thread placement.

use yukta_linalg::{Error, Result};

use crate::controllers::{ControllerState, HwPolicy, HwSense, OsPolicy, OsSense};
use crate::signals::{HwInputs, Limits, OsInputs, SloSense};

/// Whether the serving layer is close to (or past) its tail-latency bound.
///
/// Only meaningful when a request-serving run attached an active
/// [`SloSense`]; on batch runs `slo.active` is `false` and this is a
/// constant `false`, which keeps every batch trace bit-identical to the
/// pre-serving implementation.
fn slo_pressure(slo: &SloSense, limits: &Limits) -> bool {
    // React at 60% of the bound: by the time the windowed p99 *crosses*
    // the SLO the queue already holds a period of overload, and the tail
    // pays for every period of late ramping.
    slo.active && (slo.p99_s > 0.6 * limits.latency_slo_s || slo.backlog_frac > 0.3)
}

/// HMP-style coordinated scheduler (OS half of *Coordinated heuristic*,
/// also reused by *Yukta: HW SSV + OS heuristic*).
#[derive(Debug, Clone, Default)]
pub struct CoordinatedHeuristicOs;

impl CoordinatedHeuristicOs {
    /// Creates the scheduler.
    pub fn new() -> Self {
        CoordinatedHeuristicOs
    }
}

impl OsPolicy for CoordinatedHeuristicOs {
    fn invoke(&mut self, sense: &OsSense) -> Result<OsInputs> {
        let n = sense.active_threads;
        // Plan against the *physical* cores (HMP sees all CPUs); the
        // hardware layer then powers exactly the cores the placement
        // needs. Planning on currently-powered cores instead would
        // deadlock both layers at one core each.
        let nbc = 4usize;
        let nlc = 4usize;
        if n == 0 {
            return Ok(OsInputs {
                threads_big: 0.0,
                packing_big: 1.0,
                packing_little: 1.0,
            });
        }
        // Big-first placement over the cores the hardware layer exposes
        // (the coordination), one thread per core while possible.
        // E×D awareness: when the big cluster is running slow (deep DVFS
        // throttle), spill some threads to little instead of stacking big —
        // unless the serving layer is under SLO pressure, where latency
        // beats E×D and threads migrate toward the fast cluster.
        let f_ratio = (sense.ext.f_big / 2.0).clamp(0.0, 1.0);
        let throttled = f_ratio < 0.3 && !slo_pressure(&sense.slo, &sense.limits);
        let big_capacity = if throttled { nbc.min(2) } else { nbc };
        let (tb, pb, pl);
        if n <= big_capacity {
            tb = n;
            pb = 1.0;
            pl = 1.0;
        } else if n <= big_capacity + nlc {
            tb = big_capacity;
            pb = 1.0;
            pl = 1.0;
        } else {
            // Oversubscribed: pack the big cluster (it is faster) before
            // overloading little.
            let spill = n - big_capacity - nlc;
            let extra_big = spill.min(big_capacity);
            tb = big_capacity + extra_big;
            pb = (tb as f64 / big_capacity.max(1) as f64).max(1.0);
            let tl = n - tb;
            pl = (tl as f64 / nlc.max(1) as f64).max(1.0);
        }
        Ok(OsInputs {
            threads_big: tb as f64,
            packing_big: pb,
            packing_little: pl,
        })
    }

    fn name(&self) -> &'static str {
        "os-coordinated-heuristic"
    }
}

/// Safety-margin climbing governor (HW half of *Coordinated heuristic*).
#[derive(Debug, Clone, Default)]
pub struct CoordinatedHeuristicHw;

impl CoordinatedHeuristicHw {
    /// Creates the governor.
    pub fn new() -> Self {
        CoordinatedHeuristicHw
    }
}

impl HwPolicy for CoordinatedHeuristicHw {
    fn invoke(&mut self, sense: &HwSense) -> Result<HwInputs> {
        let lim = sense.limits;
        let y = sense.outputs;
        let cur = sense.current;
        // Size core counts from the thread distribution (coordination).
        let tb = sense.ext.threads_big.round() as usize;
        let tl = sense.active_threads.saturating_sub(tb);
        let need_big = ((tb as f64 / sense.ext.packing_big.max(1.0)).ceil() as usize).clamp(1, 4);
        let need_little =
            ((tl as f64 / sense.ext.packing_little.max(1.0)).ceil() as usize).clamp(1, 4);
        // Frequency: climb one step while clearly safe, back off
        // proportionally to the violation. Under SLO pressure the governor
        // jumps straight to the cluster cap instead of stepping: a flash
        // crowd ramps faster than any incremental climb, and the tail pays
        // for every period spent below capacity. The violation backoff is
        // unchanged — the safety rails outrank the SLO.
        let climb = if slo_pressure(&sense.slo, &lim) {
            2.0
        } else {
            0.1
        };
        let f_big = step_frequency(
            cur.f_big,
            y.p_big,
            lim.p_big_max,
            y.temp,
            lim.temp_max,
            2.0,
            climb,
        );
        let f_little = step_frequency(
            cur.f_little,
            y.p_little,
            lim.p_little_max,
            y.temp,
            lim.temp_max,
            1.4,
            climb,
        );
        Ok(HwInputs {
            big_cores: need_big as f64,
            little_cores: need_little as f64,
            f_big,
            f_little,
        })
    }

    fn name(&self) -> &'static str {
        "hw-coordinated-heuristic"
    }
}

/// One-step-up / proportional-step-down frequency rule shared by the
/// coordinated governor. `climb` is the upward step while safe (0.1
/// normally; large enough to hit the cap under SLO pressure).
fn step_frequency(f: f64, p: f64, p_max: f64, t: f64, t_max: f64, f_cap: f64, climb: f64) -> f64 {
    if p > p_max || t > t_max {
        let over = ((p / p_max - 1.0).max(0.0) + (t / t_max - 1.0).max(0.0)).max(0.01);
        let steps = (over / 0.05).ceil().min(5.0);
        (f - 0.1 * steps).max(0.2)
    } else {
        // Climb whenever operation is safe (Table IV(a) verbatim). This is
        // what makes the heuristic probe the limit and produce the
        // peaks/valleys of Figure 10(a): the next step up periodically
        // violates and gets knocked back.
        (f + climb).min(f_cap)
    }
}

/// Round-robin scheduler (OS half of *Decoupled heuristic*).
#[derive(Debug, Clone, Default)]
pub struct DecoupledHeuristicOs;

impl DecoupledHeuristicOs {
    /// Creates the scheduler.
    pub fn new() -> Self {
        DecoupledHeuristicOs
    }
}

impl OsPolicy for DecoupledHeuristicOs {
    fn invoke(&mut self, sense: &OsSense) -> Result<OsInputs> {
        // Round-robin over all eight cores, blind to core type/frequency:
        // alternate assignments land half the threads on each cluster.
        let n = sense.active_threads;
        let tb = n.div_ceil(2);
        Ok(OsInputs {
            threads_big: tb as f64,
            packing_big: 1.0,
            packing_little: 1.0,
        })
    }

    fn name(&self) -> &'static str {
        "os-decoupled-roundrobin"
    }
}

/// Performance-governor-style hardware controller (HW half of *Decoupled
/// heuristic*): maximum everything while safe; on a violation, threshold
/// rules reduce frequency first, then core count — irrespective of the
/// number of threads. Once readings look safe again it snaps straight
/// back to maximum, which is what makes Figure 10(b) oscillate.
#[derive(Debug, Clone, Default)]
pub struct DecoupledHeuristicHw {
    backoff_freq_steps: usize,
    backoff_cores: usize,
    safe_streak: usize,
}

impl DecoupledHeuristicHw {
    /// Creates the governor.
    pub fn new() -> Self {
        DecoupledHeuristicHw::default()
    }
}

impl HwPolicy for DecoupledHeuristicHw {
    fn invoke(&mut self, sense: &HwSense) -> Result<HwInputs> {
        let lim = sense.limits;
        let y = sense.outputs;
        let violated =
            y.p_big > lim.p_big_max || y.p_little > lim.p_little_max || y.temp > lim.temp_max;
        if violated {
            self.safe_streak = 0;
            if self.backoff_freq_steps < 8 {
                self.backoff_freq_steps += 2; // reduce frequency first…
            } else if self.backoff_cores < 3 {
                self.backoff_cores += 1; // …then the number of cores
            }
        } else {
            self.safe_streak += 1;
            if self.safe_streak >= 2 {
                // Looks safe: jump straight back to maximum.
                self.backoff_freq_steps = 0;
                self.backoff_cores = 0;
            }
        }
        Ok(HwInputs {
            big_cores: (4 - self.backoff_cores).max(1) as f64,
            little_cores: 4.0,
            f_big: (2.0 - 0.1 * self.backoff_freq_steps as f64).max(0.2),
            f_little: (1.4 - 0.1 * self.backoff_freq_steps as f64).max(0.2),
        })
    }

    fn name(&self) -> &'static str {
        "hw-decoupled-performance"
    }

    fn reset(&mut self) {
        *self = DecoupledHeuristicHw::default();
    }

    /// Ints: the three backoff counters (frequency steps, cores, safe
    /// streak). The only heuristic with internal state.
    fn save_state(&self) -> ControllerState {
        let mut s = ControllerState::stateless(self.name());
        s.ints = vec![
            self.backoff_freq_steps as i64,
            self.backoff_cores as i64,
            self.safe_streak as i64,
        ];
        s
    }

    fn restore_state(&mut self, state: &ControllerState) -> Result<()> {
        state.check(self.name(), 0, 3)?;
        if state.ints.iter().any(|&v| v < 0) {
            return Err(Error::NoSolution {
                op: "controller_restore_state",
                why: "negative backoff counter",
            });
        }
        self.backoff_freq_steps = state.ints[0] as usize;
        self.backoff_cores = state.ints[1] as usize;
        self.safe_streak = state.ints[2] as usize;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{HwOutputs, Limits, OsOutputs};

    fn hw_sense(p_big: f64, temp: f64, f_big: f64) -> HwSense {
        HwSense {
            outputs: HwOutputs {
                perf: 4.0,
                p_big,
                p_little: 0.2,
                temp,
            },
            ext: OsInputs {
                threads_big: 4.0,
                packing_big: 1.0,
                packing_little: 1.0,
            },
            current: HwInputs {
                big_cores: 4.0,
                little_cores: 4.0,
                f_big,
                f_little: 1.0,
            },
            active_threads: 8,
            slo: Default::default(),
            limits: Limits::default(),
        }
    }

    fn os_sense(n_active: usize, big_cores: f64, f_big: f64) -> OsSense {
        OsSense {
            outputs: OsOutputs::default(),
            ext: HwInputs {
                big_cores,
                little_cores: 4.0,
                f_big,
                f_little: 1.0,
            },
            current: OsInputs {
                threads_big: 4.0,
                packing_big: 1.0,
                packing_little: 1.0,
            },
            active_threads: n_active,
            system: HwOutputs::default(),
            slo: Default::default(),
            limits: Limits::default(),
        }
    }

    /// An active SLO observation with p99 past 80% of the 1 s bound.
    fn pressured_slo() -> SloSense {
        SloSense {
            active: true,
            p95_s: 0.6,
            p99_s: 0.9,
            backlog_frac: 0.2,
            drop_frac: 0.0,
        }
    }

    #[test]
    fn coordinated_os_prefers_big_cluster() {
        let mut os = CoordinatedHeuristicOs::new();
        let u = os.invoke(&os_sense(3, 4.0, 1.5)).unwrap();
        assert_eq!(u.threads_big, 3.0);
        assert_eq!(u.packing_big, 1.0);
    }

    #[test]
    fn coordinated_os_spills_to_little() {
        let mut os = CoordinatedHeuristicOs::new();
        let u = os.invoke(&os_sense(6, 4.0, 1.5)).unwrap();
        assert_eq!(u.threads_big, 4.0); // 4 big + 2 little
        assert_eq!(u.packing_little, 1.0);
    }

    #[test]
    fn coordinated_os_packs_when_oversubscribed() {
        let mut os = CoordinatedHeuristicOs::new();
        let u = os.invoke(&os_sense(12, 4.0, 1.5)).unwrap();
        assert!(u.threads_big > 4.0);
        assert!(u.packing_big > 1.0);
    }

    #[test]
    fn coordinated_os_reacts_to_throttled_big_cluster() {
        let mut os = CoordinatedHeuristicOs::new();
        let normal = os.invoke(&os_sense(4, 4.0, 1.5)).unwrap();
        let throttled = os.invoke(&os_sense(4, 4.0, 0.3)).unwrap();
        assert!(throttled.threads_big < normal.threads_big);
    }

    #[test]
    fn coordinated_os_idle_workload() {
        let mut os = CoordinatedHeuristicOs::new();
        let u = os.invoke(&os_sense(0, 4.0, 1.5)).unwrap();
        assert_eq!(u.threads_big, 0.0);
    }

    #[test]
    fn coordinated_hw_climbs_when_safe() {
        let mut hw = CoordinatedHeuristicHw::new();
        let u = hw.invoke(&hw_sense(2.0, 55.0, 1.0)).unwrap();
        assert!((u.f_big - 1.1).abs() < 1e-9);
    }

    #[test]
    fn coordinated_hw_backs_off_proportionally() {
        let mut hw = CoordinatedHeuristicHw::new();
        // 20% power overshoot → several steps down at once.
        let u = hw.invoke(&hw_sense(3.96, 55.0, 1.6)).unwrap();
        assert!(u.f_big <= 1.3, "f_big {}", u.f_big);
        // Mild overshoot → one step down.
        let u2 = hw.invoke(&hw_sense(3.35, 55.0, 1.6)).unwrap();
        assert!((u2.f_big - 1.5).abs() < 1e-9);
        // Just under the limit → keeps probing upward (the paper's
        // "increase while safe"), which is the source of its oscillation.
        let u3 = hw.invoke(&hw_sense(3.25, 55.0, 1.3)).unwrap();
        assert!((u3.f_big - 1.4).abs() < 1e-9);
    }

    #[test]
    fn coordinated_hw_sizes_cores_from_thread_distribution() {
        let mut hw = CoordinatedHeuristicHw::new();
        let mut s = hw_sense(2.0, 55.0, 1.0);
        s.ext.threads_big = 2.0;
        s.active_threads = 3; // one thread on little
        let u = hw.invoke(&s).unwrap();
        assert_eq!(u.big_cores, 2.0);
        assert_eq!(u.little_cores, 1.0);
    }

    #[test]
    fn slo_pressure_jumps_to_max_frequency_when_safe() {
        let mut hw = CoordinatedHeuristicHw::new();
        let mut s = hw_sense(2.0, 55.0, 1.0);
        s.slo = pressured_slo();
        let u = hw.invoke(&s).unwrap();
        assert!((u.f_big - 2.0).abs() < 1e-9, "f_big {}", u.f_big);
        // An inactive observation with the same readings is ignored: batch
        // runs stay bit-identical.
        s.slo.active = false;
        let u2 = hw.invoke(&s).unwrap();
        assert!((u2.f_big - 1.1).abs() < 1e-9, "f_big {}", u2.f_big);
    }

    #[test]
    fn slo_pressure_keeps_threads_on_big_despite_throttle() {
        let mut os = CoordinatedHeuristicOs::new();
        let mut s = os_sense(4, 4.0, 0.3); // deep DVFS throttle
        let spilled = os.invoke(&s).unwrap();
        assert!(spilled.threads_big < 4.0);
        s.slo = pressured_slo();
        let held = os.invoke(&s).unwrap();
        assert_eq!(
            held.threads_big, 4.0,
            "latency beats E\u{d7}D under pressure"
        );
    }

    #[test]
    fn slo_backoff_rule_is_unchanged_under_pressure() {
        // Pressure only accelerates the climb; violations still back off
        // proportionally (the safety rails outrank the SLO).
        let mut hw = CoordinatedHeuristicHw::new();
        let mut s = hw_sense(3.96, 55.0, 1.6);
        s.slo = pressured_slo();
        let u = hw.invoke(&s).unwrap();
        assert!(u.f_big <= 1.3, "f_big {}", u.f_big);
    }

    #[test]
    fn decoupled_os_round_robins() {
        let mut os = DecoupledHeuristicOs::new();
        let u = os.invoke(&os_sense(8, 4.0, 2.0)).unwrap();
        assert_eq!(u.threads_big, 4.0);
        let u = os.invoke(&os_sense(5, 4.0, 2.0)).unwrap();
        assert_eq!(u.threads_big, 3.0);
    }

    #[test]
    fn decoupled_hw_runs_flat_out_when_safe() {
        let mut hw = DecoupledHeuristicHw::new();
        let u = hw.invoke(&hw_sense(2.0, 55.0, 2.0)).unwrap();
        assert_eq!(u.f_big, 2.0);
        assert_eq!(u.big_cores, 4.0);
    }

    #[test]
    fn decoupled_hw_oscillates_on_violations() {
        let mut hw = DecoupledHeuristicHw::new();
        // Violation: backs off two steps.
        let u1 = hw.invoke(&hw_sense(4.5, 70.0, 2.0)).unwrap();
        assert!((u1.f_big - 1.8).abs() < 1e-9);
        // Continued violation: further back-off.
        let u2 = hw.invoke(&hw_sense(4.0, 70.0, 1.8)).unwrap();
        assert!((u2.f_big - 1.6).abs() < 1e-9);
        // Two safe readings: snaps back to max (the oscillation source).
        hw.invoke(&hw_sense(2.0, 60.0, 1.6)).unwrap();
        let u4 = hw.invoke(&hw_sense(2.0, 60.0, 1.6)).unwrap();
        assert_eq!(u4.f_big, 2.0);
    }

    #[test]
    fn decoupled_hw_drops_cores_after_frequency_exhausted() {
        let mut hw = DecoupledHeuristicHw::new();
        for _ in 0..4 {
            hw.invoke(&hw_sense(4.5, 88.0, 1.0)).unwrap();
        }
        let u = hw.invoke(&hw_sense(4.5, 88.0, 1.0)).unwrap();
        assert!(u.big_cores < 4.0);
    }
}
