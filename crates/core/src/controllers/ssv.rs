//! Runtime wrappers deploying the synthesized SSV controllers.
//!
//! Each wrapper owns the discrete controller state machine (Equations 3–4),
//! the signal scalers, the actuator grids, and — unless the experiment
//! pins fixed targets — an optimizer module (Figure 5).

use yukta_control::dk::SsvSynthesis;
use yukta_control::runtime::ObsAwController;
use yukta_linalg::Result;

use crate::controllers::{ControllerState, HwPolicy, HwSense, OsPolicy, OsSense};
use crate::optimizer::{HwOptimizer, OsOptimizer};
use crate::signals::{ActuatorGrids, HwInputs, HwOutputs, OsInputs, OsOutputs, SignalRanges};

/// The hardware-layer SSV controller (Table II) at runtime.
#[derive(Debug, Clone)]
pub struct SsvHwController {
    rt: ObsAwController,
    ranges: SignalRanges,
    grids: ActuatorGrids,
    optimizer: Option<HwOptimizer>,
    targets: HwOutputs,
    ignore_external: bool,
    naive_quantization: bool,
}

impl SsvHwController {
    /// Deploys a synthesized controller with an E×D optimizer.
    ///
    /// # Panics
    ///
    /// Panics if the controller does not have 11 inputs (4 output errors +
    /// 3 external signals + 4 applied inputs) and 4 outputs.
    pub fn new(syn: &SsvSynthesis, optimizer: HwOptimizer) -> Self {
        assert_eq!(syn.controller.n_inputs(), 11, "hw SSV controller inputs");
        assert_eq!(syn.controller.n_outputs(), 4, "hw SSV controller outputs");
        SsvHwController {
            rt: ObsAwController::new(&syn.controller),
            ranges: SignalRanges::xu3(),
            grids: ActuatorGrids::xu3(),
            optimizer: Some(optimizer),
            targets: HwOutputs::default(),
            ignore_external: false,
            naive_quantization: false,
        }
    }

    /// Ablation: run without coordination — the external-signal channels
    /// are zeroed at runtime (the controller was still synthesized with
    /// them; this measures the value of the information itself).
    pub fn without_external_signals(mut self) -> Self {
        self.ignore_external = true;
        self
    }

    /// Ablation: quantization-blind deployment — the observer propagates
    /// with the *commanded* input instead of the applied one, as a naive
    /// wrapper would. Measures the value of saturation/quantization
    /// awareness.
    pub fn with_naive_quantization(mut self) -> Self {
        self.naive_quantization = true;
        self
    }

    /// Deploys with fixed output targets (the Figure 15(a) experiment).
    pub fn with_fixed_targets(syn: &SsvSynthesis, targets: HwOutputs) -> Self {
        let mut c = SsvHwController::new(syn, HwOptimizer::new(Default::default()));
        c.optimizer = None;
        c.targets = targets;
        c
    }

    /// The targets currently being tracked.
    pub fn targets(&self) -> HwOutputs {
        self.targets
    }
}

impl HwPolicy for SsvHwController {
    fn invoke(&mut self, sense: &HwSense) -> Result<HwInputs> {
        if let Some(opt) = &mut self.optimizer {
            self.targets = opt.update(&sense.outputs);
        }
        let ty = self.ranges.norm_hw_outputs(&self.targets);
        let my = self.ranges.norm_hw_outputs(&sense.outputs);
        let mut ext = self.ranges.norm_os_inputs(&sense.ext);
        if self.ignore_external {
            ext = [0.0; 3];
        }
        let meas = [
            ty[0] - my[0],
            ty[1] - my[1],
            ty[2] - my[2],
            ty[3] - my[3],
            ext[0],
            ext[1],
            ext[2],
        ];
        let ranges = self.ranges.clone();
        let grids = self.grids.clone();
        let naive = self.naive_quantization;
        let quantize = move |u: &[f64]| -> Vec<f64> {
            if naive {
                // Quantization-blind: tell the observer the command went
                // through unchanged (the board still snaps it).
                return u.to_vec();
            }
            vec![
                ranges
                    .cores
                    .normalize(grids.big_cores.quantize(ranges.cores.denormalize(u[0]))),
                ranges
                    .cores
                    .normalize(grids.little_cores.quantize(ranges.cores.denormalize(u[1]))),
                ranges
                    .f_big
                    .normalize(grids.f_big.quantize(ranges.f_big.denormalize(u[2]))),
                ranges
                    .f_little
                    .normalize(grids.f_little.quantize(ranges.f_little.denormalize(u[3]))),
            ]
        };
        let (_, applied) = self.rt.step(&meas, &quantize)?;
        // (Under the naive-quantization ablation `applied` is the raw
        // command; the board's own snapping still applies downstream.)
        Ok(HwInputs {
            big_cores: self.ranges.cores.denormalize(applied[0]),
            little_cores: self.ranges.cores.denormalize(applied[1]),
            f_big: self.ranges.f_big.denormalize(applied[2]),
            f_little: self.ranges.f_little.denormalize(applied[3]),
        })
    }

    fn name(&self) -> &'static str {
        "hw-ssv"
    }

    fn reset(&mut self) {
        self.rt.reset();
    }

    /// Floats: observer state, then the 4 targets, then the optimizer
    /// payload (if present). Ints: optimizer-present flag, then the
    /// optimizer's ints.
    fn save_state(&self) -> ControllerState {
        let mut s = ControllerState::stateless(self.name());
        s.floats.extend_from_slice(self.rt.state());
        s.floats.extend_from_slice(&self.targets.to_vec());
        s.ints.push(i64::from(self.optimizer.is_some()));
        if let Some(opt) = &self.optimizer {
            opt.save_state(&mut s.floats, &mut s.ints);
        }
        s
    }

    fn restore_state(&mut self, state: &ControllerState) -> Result<()> {
        let n = self.rt.state().len();
        let (nf, ni) = match &self.optimizer {
            Some(_) => (
                n + 4 + HwOptimizer::STATE_FLOATS,
                1 + HwOptimizer::STATE_INTS,
            ),
            None => (n + 4, 1),
        };
        state.check(self.name(), nf, ni)?;
        if (state.ints[0] != 0) != self.optimizer.is_some() {
            return Err(yukta_linalg::Error::NoSolution {
                op: "controller_restore_state",
                why: "optimizer presence mismatch",
            });
        }
        self.rt.set_state(&state.floats[..n])?;
        self.targets = HwOutputs {
            perf: state.floats[n],
            p_big: state.floats[n + 1],
            p_little: state.floats[n + 2],
            temp: state.floats[n + 3],
        };
        if let Some(opt) = &mut self.optimizer {
            opt.restore_state(&state.floats[n + 4..], &state.ints[1..]);
        }
        Ok(())
    }
}

/// The software-layer SSV controller (Table III) at runtime.
#[derive(Debug, Clone)]
pub struct SsvOsController {
    rt: ObsAwController,
    ranges: SignalRanges,
    grids: ActuatorGrids,
    optimizer: Option<OsOptimizer>,
    targets: OsOutputs,
    ignore_external: bool,
    naive_quantization: bool,
}

impl SsvOsController {
    /// Deploys a synthesized controller with an E×D optimizer.
    ///
    /// # Panics
    ///
    /// Panics if the controller does not have 10 inputs (3 output errors +
    /// 4 external signals + 3 applied inputs) and 3 outputs.
    pub fn new(syn: &SsvSynthesis, optimizer: OsOptimizer) -> Self {
        assert_eq!(syn.controller.n_inputs(), 10, "os SSV controller inputs");
        assert_eq!(syn.controller.n_outputs(), 3, "os SSV controller outputs");
        SsvOsController {
            rt: ObsAwController::new(&syn.controller),
            ranges: SignalRanges::xu3(),
            grids: ActuatorGrids::xu3(),
            optimizer: Some(optimizer),
            targets: OsOutputs::default(),
            ignore_external: false,
            naive_quantization: false,
        }
    }

    /// Ablation: run without coordination (external signals zeroed).
    pub fn without_external_signals(mut self) -> Self {
        self.ignore_external = true;
        self
    }

    /// Ablation: quantization-blind deployment (see
    /// [`SsvHwController::with_naive_quantization`]).
    pub fn with_naive_quantization(mut self) -> Self {
        self.naive_quantization = true;
        self
    }

    /// Deploys with fixed output targets (the Figure 15(a) experiment).
    pub fn with_fixed_targets(syn: &SsvSynthesis, targets: OsOutputs) -> Self {
        let mut c = SsvOsController::new(syn, OsOptimizer::new());
        c.optimizer = None;
        c.targets = targets;
        c
    }

    /// The targets currently being tracked.
    pub fn targets(&self) -> OsOutputs {
        self.targets
    }
}

impl OsPolicy for SsvOsController {
    fn invoke(&mut self, sense: &OsSense) -> Result<OsInputs> {
        if let Some(opt) = &mut self.optimizer {
            self.targets = opt.update(&sense.outputs, &sense.system);
        }
        let ty = self.ranges.norm_os_outputs(&self.targets);
        let my = self.ranges.norm_os_outputs(&sense.outputs);
        let mut ext = self.ranges.norm_hw_inputs(&sense.ext);
        if self.ignore_external {
            ext = [0.0; 4];
        }
        let meas = [
            ty[0] - my[0],
            ty[1] - my[1],
            ty[2] - my[2],
            ext[0],
            ext[1],
            ext[2],
            ext[3],
        ];
        let n_active = sense.active_threads as f64;
        let ranges = self.ranges.clone();
        let grids = self.grids.clone();
        let naive = self.naive_quantization;
        let quantize = move |u: &[f64]| -> Vec<f64> {
            if naive {
                return u.to_vec();
            }
            let tb = grids
                .threads_big
                .quantize(ranges.threads_big.denormalize(u[0]))
                .min(n_active);
            vec![
                ranges.threads_big.normalize(tb),
                ranges
                    .packing
                    .normalize(grids.packing.quantize(ranges.packing.denormalize(u[1]))),
                ranges
                    .packing
                    .normalize(grids.packing.quantize(ranges.packing.denormalize(u[2]))),
            ]
        };
        let (_, applied) = self.rt.step(&meas, &quantize)?;
        Ok(OsInputs {
            threads_big: self
                .ranges
                .threads_big
                .denormalize(applied[0])
                .clamp(0.0, n_active),
            packing_big: self.ranges.packing.denormalize(applied[1]).clamp(1.0, 4.0),
            packing_little: self.ranges.packing.denormalize(applied[2]).clamp(1.0, 4.0),
        })
    }

    fn name(&self) -> &'static str {
        "os-ssv"
    }

    fn reset(&mut self) {
        self.rt.reset();
    }

    /// Floats: observer state, then the 3 targets, then the optimizer
    /// payload (if present). Ints: optimizer-present flag, then the
    /// optimizer's ints.
    fn save_state(&self) -> ControllerState {
        let mut s = ControllerState::stateless(self.name());
        s.floats.extend_from_slice(self.rt.state());
        s.floats.extend_from_slice(&self.targets.to_vec());
        s.ints.push(i64::from(self.optimizer.is_some()));
        if let Some(opt) = &self.optimizer {
            opt.save_state(&mut s.floats, &mut s.ints);
        }
        s
    }

    fn restore_state(&mut self, state: &ControllerState) -> Result<()> {
        let n = self.rt.state().len();
        let (nf, ni) = match &self.optimizer {
            Some(_) => (
                n + 3 + OsOptimizer::STATE_FLOATS,
                1 + OsOptimizer::STATE_INTS,
            ),
            None => (n + 3, 1),
        };
        state.check(self.name(), nf, ni)?;
        if (state.ints[0] != 0) != self.optimizer.is_some() {
            return Err(yukta_linalg::Error::NoSolution {
                op: "controller_restore_state",
                why: "optimizer presence mismatch",
            });
        }
        self.rt.set_state(&state.floats[..n])?;
        self.targets = OsOutputs {
            perf_little: state.floats[n],
            perf_big: state.floats[n + 1],
            spare_diff: state.floats[n + 2],
        };
        if let Some(opt) = &mut self.optimizer {
            opt.restore_state(&state.floats[n + 3..], &state.ints[1..]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::Limits;
    use yukta_linalg::Mat;

    /// A stand-in synthesis result with the right I/O shape: a small
    /// static gain from errors to inputs and zero anti-windup gain.
    fn dummy_hw_synthesis() -> SsvSynthesis {
        let mut d = Mat::zeros(4, 11);
        for i in 0..4 {
            d[(i, i)] = 0.5;
        }
        SsvSynthesis {
            controller: yukta_control::ss::StateSpace::from_gain(d, Some(0.5)),
            gamma: 1.0,
            mu_peak: 1.0,
            scalings: vec![1.0],
            d_sections: Vec::new(),
            iterations: 1,
            guaranteed_bounds: vec![0.2; 4],
        }
    }

    fn dummy_os_synthesis() -> SsvSynthesis {
        let mut d = Mat::zeros(3, 10);
        for i in 0..3 {
            d[(i, i)] = 0.5;
        }
        SsvSynthesis {
            controller: yukta_control::ss::StateSpace::from_gain(d, Some(0.5)),
            gamma: 1.0,
            mu_peak: 1.0,
            scalings: vec![1.0],
            d_sections: Vec::new(),
            iterations: 1,
            guaranteed_bounds: vec![0.2; 3],
        }
    }

    fn hw_sense() -> HwSense {
        HwSense {
            outputs: HwOutputs {
                perf: 3.0,
                p_big: 2.0,
                p_little: 0.2,
                temp: 60.0,
            },
            ext: OsInputs {
                threads_big: 4.0,
                packing_big: 1.0,
                packing_little: 1.0,
            },
            current: HwInputs {
                big_cores: 4.0,
                little_cores: 4.0,
                f_big: 1.0,
                f_little: 1.0,
            },
            active_threads: 8,
            slo: Default::default(),
            limits: Limits::default(),
        }
    }

    #[test]
    fn hw_outputs_land_on_actuator_grids() {
        let mut c =
            SsvHwController::new(&dummy_hw_synthesis(), HwOptimizer::new(Limits::default()));
        let u = c.invoke(&hw_sense()).unwrap();
        let g = ActuatorGrids::xu3();
        assert_eq!(g.f_big.quantize(u.f_big), u.f_big);
        assert_eq!(g.big_cores.quantize(u.big_cores), u.big_cores);
        assert!((1.0..=4.0).contains(&u.big_cores));
        assert!((0.2..=2.0).contains(&u.f_big));
    }

    #[test]
    fn fixed_targets_skip_the_optimizer() {
        let t = HwOutputs {
            perf: 5.5,
            p_big: 2.5,
            p_little: 0.2,
            temp: 70.0,
        };
        let mut c = SsvHwController::with_fixed_targets(&dummy_hw_synthesis(), t);
        c.invoke(&hw_sense()).unwrap();
        c.invoke(&hw_sense()).unwrap();
        assert_eq!(c.targets(), t);
    }

    #[test]
    fn optimizer_moves_targets_between_invocations() {
        let mut c =
            SsvHwController::new(&dummy_hw_synthesis(), HwOptimizer::new(Limits::default()));
        c.invoke(&hw_sense()).unwrap();
        let t1 = c.targets();
        c.invoke(&hw_sense()).unwrap();
        let t2 = c.targets();
        assert!((t2.perf - t1.perf).abs() > 1e-9);
    }

    #[test]
    fn save_restore_roundtrips_hw_controller_bit_for_bit() {
        let mut c =
            SsvHwController::new(&dummy_hw_synthesis(), HwOptimizer::new(Limits::default()));
        for _ in 0..5 {
            c.invoke(&hw_sense()).unwrap();
        }
        let snap = c.save_state();
        let mut twin = c.clone();
        // Diverge, then restore from the snapshot.
        for _ in 0..7 {
            c.invoke(&hw_sense()).unwrap();
        }
        c.restore_state(&snap).unwrap();
        for k in 0..4 {
            let mut sense = hw_sense();
            sense.outputs.perf += 0.1 * k as f64;
            let a = c.invoke(&sense).unwrap();
            let b = twin.invoke(&sense).unwrap();
            for (x, y) in a.to_vec().iter().zip(&b.to_vec()) {
                assert_eq!(x.to_bits(), y.to_bits(), "invocation {k}");
            }
        }
        assert_eq!(c.targets(), twin.targets());
        // A foreign snapshot is rejected with a typed error.
        let mut os = SsvOsController::new(&dummy_os_synthesis(), OsOptimizer::new());
        assert!(OsPolicy::restore_state(&mut os, &ControllerState::stateless("os-ssv")).is_err());
        assert!(HwPolicy::restore_state(&mut c, &ControllerState::stateless("os-ssv")).is_err());
    }

    #[test]
    fn os_threads_never_exceed_active() {
        let mut c = SsvOsController::new(&dummy_os_synthesis(), OsOptimizer::new());
        let sense = OsSense {
            outputs: OsOutputs {
                perf_little: 0.3,
                perf_big: 2.0,
                spare_diff: 0.0,
            },
            ext: HwInputs {
                big_cores: 4.0,
                little_cores: 4.0,
                f_big: 1.6,
                f_little: 1.0,
            },
            current: OsInputs {
                threads_big: 4.0,
                packing_big: 1.0,
                packing_little: 1.0,
            },
            active_threads: 2,
            system: HwOutputs::default(),
            slo: Default::default(),
            limits: Limits::default(),
        };
        let u = c.invoke(&sense).unwrap();
        assert!(u.threads_big <= 2.0);
        assert!((1.0..=4.0).contains(&u.packing_big));
    }
}
