//! The synchronous reconfiguration automaton (DESIGN.md §14).
//!
//! Every discrete reconfiguration decision in the stack — supervisor
//! degradation and re-engagement, controller hot-swap, crash recovery —
//! flows through one [`ModeAutomaton`]: a synchronous state machine in the
//! style of the Fractal reconfiguration controllers (discrete controller
//! synthesis treats reconfiguration logic as an automaton with explicit
//! guards, not scattered `if`s). The automaton owns the *decision*; the
//! supervisor and runtime own the *actions* (controller resets, state
//! transfer, checkpoint restore) and drive the automaton as a choke point.
//!
//! # State space
//!
//! The state is the product `level × swap_pending × recovering`:
//!
//! * `level ∈ {Primary, Fallback, Safe}` — which controller serves
//!   ([`SupervisorMode`]);
//! * `swap_pending` — a hot-swap was requested but not yet committed
//!   (the window a crash can land in);
//! * `recovering` — the engine is replaying a journal suffix after a
//!   crash restore.
//!
//! # Transition table
//!
//! | level    | event                 | guard                        | next     | driver action            |
//! |----------|-----------------------|------------------------------|----------|--------------------------|
//! | Primary  | `Sample{clean}`       | —                            | Primary  | serve primary            |
//! | Primary  | `Sample{!clean}`      | —                            | Fallback | fresh fallback, serve it |
//! | Fallback | `Sample{clean}`       | `clean_streak < N`           | Fallback | serve fallback           |
//! | Fallback | `Sample{clean}`       | `clean_streak ≥ N`           | Primary  | reset + serve primary    |
//! | Fallback | `Sample{!clean}`      | `dirty_streak < M`           | Fallback | serve fallback           |
//! | Fallback | `Sample{!clean}`      | `dirty_streak ≥ M`           | Safe     | serve safe static        |
//! | Safe     | `Sample{clean}`       | `clean_streak < N`           | Safe     | serve safe static        |
//! | Safe     | `Sample{clean}`       | `clean_streak ≥ N`           | Fallback | fresh fallback, serve it |
//! | Safe     | `Sample{!clean}`      | —                            | Safe     | serve safe static        |
//! | Primary  | `PrimaryError`        | —                            | Fallback | fresh fallback, serve it |
//! | F/S      | `PrimaryError`        | —                            | *(violation: primary not serving)* | |
//! | Fallback | `FallbackError`       | —                            | Safe     | serve safe static        |
//! | Safe     | `FallbackError`       | —                            | Safe     | tolerated no-op          |
//! | Primary  | `FallbackError`       | —                            | *(violation: fallback not serving)* | |
//! | any      | `SwapRequest`         | `!swap_pending`              | pending  | prepare replacement      |
//! | any      | `SwapRequest`         | `swap_pending`               | *(violation: re-entrant swap)* | |
//! | any      | `SwapCommit`          | `swap_pending`               | !pending | install replacement      |
//! | any      | `SwapCommit`          | `!swap_pending`              | *(violation: commit w/o request)* | |
//! | any      | `RecoveryBegin`       | `!recovering`                | recovering | replay journal suffix  |
//! | any      | `RecoveryEnd`         | `recovering`                 | !recovering | resume live loop      |
//!
//! `N = reengage_after` (hysteresis) and `M = escalate_after`
//! (sustained-fault escalation). At most one level change happens per
//! event; the automaton checks this itself.
//!
//! # Invariant catalog
//!
//! Machine-checked on every step, recorded (count + first occurrence) and
//! surfaced as typed [`InvariantViolation`] values — never a panic and
//! never silent behavior:
//!
//! * **No actuation gap** — every `begin_invocation`/`end_invocation`
//!   bracket must claim every knob (DVFS, hotplug, migration, admission)
//!   exactly once; a missing claim is [`InvariantViolation::ActuationGap`].
//! * **Single writer per knob** — a second claim on the same knob within
//!   one bracket is [`InvariantViolation::DualWriter`]. The TMU is a
//!   *capper*, not a writer: it never claims a knob, and the board audits
//!   separately that its caps only ever tighten a request
//!   (`yukta_board::ActuationAudit`).
//! * **No flapping** — a Fallback→Primary or Safe→Fallback promotion is
//!   re-verified against the hysteresis guard at the moment it fires;
//!   promoting below the threshold is [`InvariantViolation::Flapping`].
//! * **Legal events only** — an event a state has no transition for
//!   ([`InvariantViolation::IllegalEvent`]) leaves the state unchanged
//!   (fail-safe: the automaton keeps serving).
//!
//! The automaton is pure integer/boolean arithmetic: bit-reproducible,
//! checkpointable via [`ModeSnapshot`], and exactly restored across crash
//! recovery.

use serde::{Deserialize, Serialize};

use crate::supervisor::SupervisorMode;

/// The reconfiguration knobs a serving controller writes each invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Knob {
    /// Per-cluster frequency requests.
    Dvfs,
    /// Per-cluster core-count requests.
    Hotplug,
    /// Thread placement.
    Migration,
    /// Request admission control (load-shedding fraction). Shedding is a
    /// reconfiguration action like any other: it must have exactly one
    /// writer per invocation — the supervisor's overload governor — so
    /// ad-hoc drop paths cannot race it.
    Admission,
}

impl Knob {
    /// All knobs, in claim order.
    pub const ALL: [Knob; 4] = [Knob::Dvfs, Knob::Hotplug, Knob::Migration, Knob::Admission];

    /// Short label for telemetry and diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            Knob::Dvfs => "dvfs",
            Knob::Hotplug => "hotplug",
            Knob::Migration => "migration",
            Knob::Admission => "admission",
        }
    }

    fn index(&self) -> usize {
        match self {
            Knob::Dvfs => 0,
            Knob::Hotplug => 1,
            Knob::Migration => 2,
            Knob::Admission => 3,
        }
    }
}

/// Telemetry label for a serving level.
pub fn level_label(level: SupervisorMode) -> &'static str {
    match level {
        SupervisorMode::Primary => "primary",
        SupervisorMode::Fallback => "fallback",
        SupervisorMode::Safe => "safe",
    }
}

/// Inputs of the synchronous automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeEvent {
    /// One sanitized sensor sample; `clean` = no fault evidence.
    Sample {
        /// Whether the sample carried no fault evidence.
        clean: bool,
    },
    /// The primary controller returned a typed error or non-finite output.
    PrimaryError,
    /// The fallback heuristic returned a typed error or non-finite output.
    FallbackError,
    /// A hot-swap of the primary controllers was requested.
    SwapRequest,
    /// The requested hot-swap is being installed.
    SwapCommit,
    /// Crash recovery started (checkpoint restored, replay begins).
    RecoveryBegin,
    /// Crash recovery finished (journal suffix replayed).
    RecoveryEnd,
}

impl ModeEvent {
    /// Short label for diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            ModeEvent::Sample { clean: true } => "sample_clean",
            ModeEvent::Sample { clean: false } => "sample_dirty",
            ModeEvent::PrimaryError => "primary_error",
            ModeEvent::FallbackError => "fallback_error",
            ModeEvent::SwapRequest => "swap_request",
            ModeEvent::SwapCommit => "swap_commit",
            ModeEvent::RecoveryBegin => "recovery_begin",
            ModeEvent::RecoveryEnd => "recovery_end",
        }
    }
}

/// A machine-checked invariant that failed. Typed, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantViolation {
    /// An invocation bracket closed without every knob claimed: some knob
    /// had no writer this step.
    ActuationGap {
        /// Automaton step counter at the gap.
        step: u64,
        /// The unclaimed knob.
        knob: Knob,
    },
    /// Two writers claimed the same knob within one invocation.
    DualWriter {
        /// The contested knob.
        knob: Knob,
        /// Owner that claimed first.
        first: &'static str,
        /// Owner that claimed second.
        second: &'static str,
    },
    /// A promotion fired below the hysteresis threshold.
    Flapping {
        /// Clean streak at the (illegal) promotion.
        streak: u32,
        /// Required streak (`reengage_after`).
        required: u32,
    },
    /// An event the current state has no transition for.
    IllegalEvent {
        /// Serving level when the event arrived.
        level: SupervisorMode,
        /// The offending event.
        event: ModeEvent,
    },
    /// `begin_invocation` while the previous bracket was still open.
    UnterminatedInvocation {
        /// Step of the bracket left open.
        step: u64,
    },
    /// A claim or bracket end outside an open invocation bracket.
    OutOfBracket {
        /// Automaton step counter at the stray call.
        step: u64,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::ActuationGap { step, knob } => {
                write!(
                    f,
                    "actuation gap at step {step}: no writer for {}",
                    knob.label()
                )
            }
            InvariantViolation::DualWriter {
                knob,
                first,
                second,
            } => {
                write!(f, "dual writer on {}: {first} then {second}", knob.label())
            }
            InvariantViolation::Flapping { streak, required } => {
                write!(
                    f,
                    "flapping: promoted at clean streak {streak} < {required}"
                )
            }
            InvariantViolation::IllegalEvent { level, event } => {
                write!(
                    f,
                    "illegal event {} in level {}",
                    event.label(),
                    level_label(*level)
                )
            }
            InvariantViolation::UnterminatedInvocation { step } => {
                write!(f, "invocation bracket at step {step} never ended")
            }
            InvariantViolation::OutOfBracket { step } => {
                write!(f, "claim/end outside an invocation bracket at step {step}")
            }
        }
    }
}

/// Why a level change fired (telemetry label).
pub type TransitionCause = &'static str;

/// A level change decided by the automaton; the driver applies the
/// matching action (controller reset, fresh fallbacks, counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelChange {
    /// Level before the event.
    pub from: SupervisorMode,
    /// Level after the event.
    pub to: SupervisorMode,
    /// Why (one of the causes in the transition table).
    pub cause: TransitionCause,
}

/// The outcome of feeding one event: which level serves this invocation
/// and the level change (if any) the driver must act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The level that serves after this event.
    pub serve: SupervisorMode,
    /// At most one level change per event.
    pub change: Option<LevelChange>,
}

/// One recorded transition, drained by the runtime into `mode.transition`
/// telemetry events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionRecord {
    /// Automaton step counter when the transition fired (0 before the
    /// first invocation bracket).
    pub step: u64,
    /// Level before.
    pub from: SupervisorMode,
    /// Level after (equal to `from` for swap/recovery phase changes).
    pub to: SupervisorMode,
    /// Cause label (`fault_evidence`, `hysteresis_reengage`,
    /// `controller_error`, `fallback_error`, `escalation`, `swap_request`,
    /// `swap_commit`, `recovery_begin`, `recovery_end`).
    pub cause: TransitionCause,
}

/// The full typed state triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeState {
    /// Serving level.
    pub level: SupervisorMode,
    /// A hot-swap is requested but not yet committed.
    pub swap_pending: bool,
    /// A crash recovery replay is in progress.
    pub recovering: bool,
}

/// Guard thresholds of the automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModeConfig {
    /// Consecutive clean samples before a demoted level is promoted one
    /// step (hysteresis guard `N`).
    pub reengage_after: u32,
    /// Consecutive dirty samples in Fallback before escalating to Safe
    /// (sustained-fault guard `M`).
    pub escalate_after: u32,
}

impl Default for ModeConfig {
    fn default() -> Self {
        ModeConfig {
            reengage_after: 6,  // 3 s of clean telemetry at 500 ms
            escalate_after: 24, // 12 s of continuous fault evidence
        }
    }
}

/// Resumable snapshot of a [`ModeAutomaton`]. Taken between invocation
/// brackets (checkpoints), restored bit-exactly on crash recovery. The
/// transition log and the first-violation diagnostic are telemetry, not
/// state, and are not part of the snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeSnapshot {
    /// Serving level.
    pub level: SupervisorMode,
    /// Consecutive clean samples toward re-engagement.
    pub clean_streak: u32,
    /// Consecutive dirty samples toward escalation.
    pub dirty_streak: u32,
    /// A swap was requested but not committed.
    pub swap_pending: bool,
    /// A recovery replay was in progress.
    pub recovering: bool,
    /// Invocation brackets opened so far.
    pub step: u64,
    /// Invariant violations recorded so far.
    pub violations: u64,
}

/// Cap on the undrained transition log; the runtime drains it every
/// invocation, so this only bounds pathological drivers.
const TRANSITION_LOG_CAP: usize = 1024;

/// The synchronous mode automaton. See the module docs for the state
/// space, transition table, and invariant catalog.
#[derive(Debug, Clone)]
pub struct ModeAutomaton {
    cfg: ModeConfig,
    level: SupervisorMode,
    clean_streak: u32,
    dirty_streak: u32,
    swap_pending: bool,
    recovering: bool,
    step: u64,
    in_bracket: bool,
    claims: [Option<&'static str>; 4],
    violations: u64,
    first_violation: Option<InvariantViolation>,
    transitions: Vec<TransitionRecord>,
}

impl ModeAutomaton {
    /// A fresh automaton in `Primary`, no swap pending, not recovering.
    pub fn new(cfg: ModeConfig) -> Self {
        ModeAutomaton {
            cfg,
            level: SupervisorMode::Primary,
            clean_streak: 0,
            dirty_streak: 0,
            swap_pending: false,
            recovering: false,
            step: 0,
            in_bracket: false,
            claims: [None; 4],
            violations: 0,
            first_violation: None,
            transitions: Vec::new(),
        }
    }

    /// The serving level.
    pub fn level(&self) -> SupervisorMode {
        self.level
    }

    /// The full typed state triple.
    pub fn state(&self) -> ModeState {
        ModeState {
            level: self.level,
            swap_pending: self.swap_pending,
            recovering: self.recovering,
        }
    }

    /// Consecutive clean samples toward re-engagement.
    pub fn clean_streak(&self) -> u32 {
        self.clean_streak
    }

    /// Consecutive dirty samples toward escalation.
    pub fn dirty_streak(&self) -> u32 {
        self.dirty_streak
    }

    /// Whether a swap is requested but not yet committed.
    pub fn swap_pending(&self) -> bool {
        self.swap_pending
    }

    /// Whether a recovery replay is in progress.
    pub fn recovering(&self) -> bool {
        self.recovering
    }

    /// Invariant violations recorded so far.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// The first violation recorded (diagnostic).
    pub fn first_violation(&self) -> Option<InvariantViolation> {
        self.first_violation
    }

    /// Drains the transition log (telemetry; behavior-neutral).
    pub fn drain_transitions(&mut self) -> Vec<TransitionRecord> {
        std::mem::take(&mut self.transitions)
    }

    fn record_violation(&mut self, v: InvariantViolation) {
        self.violations += 1;
        if self.first_violation.is_none() {
            self.first_violation = Some(v);
        }
    }

    fn record_transition(
        &mut self,
        from: SupervisorMode,
        to: SupervisorMode,
        cause: TransitionCause,
    ) {
        if self.transitions.len() < TRANSITION_LOG_CAP {
            self.transitions.push(TransitionRecord {
                step: self.step,
                from,
                to,
                cause,
            });
        }
    }

    /// Opens one invocation bracket: claims reset, step counter advances.
    pub fn begin_invocation(&mut self) {
        if self.in_bracket {
            self.record_violation(InvariantViolation::UnterminatedInvocation { step: self.step });
        }
        self.step += 1;
        self.claims = [None; 4];
        self.in_bracket = true;
    }

    /// Claims one knob for `owner` within the open bracket. A second
    /// claim on the same knob is a [`InvariantViolation::DualWriter`].
    pub fn claim(&mut self, knob: Knob, owner: &'static str) {
        if !self.in_bracket {
            self.record_violation(InvariantViolation::OutOfBracket { step: self.step });
            return;
        }
        let slot = &mut self.claims[knob.index()];
        match *slot {
            Some(first) => {
                self.record_violation(InvariantViolation::DualWriter {
                    knob,
                    first,
                    second: owner,
                });
            }
            None => *slot = Some(owner),
        }
    }

    /// Closes the bracket, checking every knob was claimed exactly once
    /// (no actuation gap).
    pub fn end_invocation(&mut self) {
        if !self.in_bracket {
            self.record_violation(InvariantViolation::OutOfBracket { step: self.step });
            return;
        }
        for knob in Knob::ALL {
            if self.claims[knob.index()].is_none() {
                self.record_violation(InvariantViolation::ActuationGap {
                    step: self.step,
                    knob,
                });
            }
        }
        self.in_bracket = false;
    }

    /// Closes the bracket without the actuation-gap check — for the typed
    /// error path of a raw engine, where the run terminates with the error
    /// instead of actuating.
    pub fn abort_invocation(&mut self) {
        self.claims = [None; 4];
        self.in_bracket = false;
    }

    /// Moves the level and records the transition; returns the change for
    /// the driver to act on.
    fn fire(&mut self, to: SupervisorMode, cause: TransitionCause) -> LevelChange {
        let from = self.level;
        self.level = to;
        self.record_transition(from, to, cause);
        LevelChange { from, to, cause }
    }

    /// Feeds one event through the checked transition table. Violations
    /// are recorded *and* returned; the state is left fail-safe (serving
    /// continues at the current level).
    pub fn apply(&mut self, event: ModeEvent) -> Result<Decision, InvariantViolation> {
        use SupervisorMode::{Fallback, Primary, Safe};
        let mut change: Option<LevelChange> = None;
        match event {
            ModeEvent::Sample { clean } => {
                if clean {
                    self.clean_streak += 1;
                    self.dirty_streak = 0;
                } else {
                    self.clean_streak = 0;
                    self.dirty_streak += 1;
                }
                // Hysteresis re-engagement, guard re-verified at the
                // promotion itself (the no-flapping invariant).
                if self.level != Primary && self.clean_streak >= self.cfg.reengage_after {
                    // The no-flapping invariant: the hysteresis guard is
                    // re-verified at the moment the promotion fires.
                    if self.clean_streak < self.cfg.reengage_after {
                        let v = InvariantViolation::Flapping {
                            streak: self.clean_streak,
                            required: self.cfg.reengage_after,
                        };
                        self.record_violation(v);
                        return Err(v);
                    }
                    let to = match self.level {
                        Safe => Fallback,
                        _ => Primary,
                    };
                    change = Some(self.fire(to, "hysteresis_reengage"));
                    self.clean_streak = 0;
                } else if self.level == Primary && !clean {
                    // Fault evidence demotes for this sample and until the
                    // clean streak rebuilds.
                    change = Some(self.fire(Fallback, "fault_evidence"));
                } else if self.level == Fallback
                    && !clean
                    && self.dirty_streak >= self.cfg.escalate_after
                {
                    // Sustained fault evidence: stop burning the fallback
                    // heuristic on a hostile sensor view, park in Safe.
                    // Unreachable in the same event as a Primary demotion
                    // (the `else` chain enforces one change per event).
                    change = Some(self.fire(Safe, "escalation"));
                    self.dirty_streak = 0;
                }
            }
            ModeEvent::PrimaryError => match self.level {
                Primary => {
                    change = Some(self.fire(Fallback, "controller_error"));
                    self.clean_streak = 0;
                }
                level => {
                    let v = InvariantViolation::IllegalEvent { level, event };
                    self.record_violation(v);
                    return Err(v);
                }
            },
            ModeEvent::FallbackError => match self.level {
                Fallback => change = Some(self.fire(Safe, "fallback_error")),
                Safe => {} // already parked; tolerated no-op
                level @ Primary => {
                    let v = InvariantViolation::IllegalEvent { level, event };
                    self.record_violation(v);
                    return Err(v);
                }
            },
            ModeEvent::SwapRequest => {
                if self.swap_pending {
                    let v = InvariantViolation::IllegalEvent {
                        level: self.level,
                        event,
                    };
                    self.record_violation(v);
                    return Err(v);
                }
                self.swap_pending = true;
                self.record_transition(self.level, self.level, "swap_request");
            }
            ModeEvent::SwapCommit => {
                if !self.swap_pending {
                    let v = InvariantViolation::IllegalEvent {
                        level: self.level,
                        event,
                    };
                    self.record_violation(v);
                    return Err(v);
                }
                self.swap_pending = false;
                self.record_transition(self.level, self.level, "swap_commit");
            }
            ModeEvent::RecoveryBegin => {
                if self.recovering {
                    let v = InvariantViolation::IllegalEvent {
                        level: self.level,
                        event,
                    };
                    self.record_violation(v);
                    return Err(v);
                }
                self.recovering = true;
                self.record_transition(self.level, self.level, "recovery_begin");
            }
            ModeEvent::RecoveryEnd => {
                if !self.recovering {
                    let v = InvariantViolation::IllegalEvent {
                        level: self.level,
                        event,
                    };
                    self.record_violation(v);
                    return Err(v);
                }
                self.recovering = false;
                self.record_transition(self.level, self.level, "recovery_end");
            }
        }
        Ok(Decision {
            serve: self.level,
            change,
        })
    }

    /// [`ModeAutomaton::apply`] with the fail-safe default: on a recorded
    /// violation the decision is "keep serving at the current level".
    fn apply_lenient(&mut self, event: ModeEvent) -> Decision {
        self.apply(event).unwrap_or(Decision {
            serve: self.level,
            change: None,
        })
    }

    /// One sanitized sensor sample.
    pub fn on_sample(&mut self, clean: bool) -> Decision {
        self.apply_lenient(ModeEvent::Sample { clean })
    }

    /// The primary controller failed (typed error / non-finite output).
    pub fn on_primary_error(&mut self) -> Decision {
        self.apply_lenient(ModeEvent::PrimaryError)
    }

    /// The fallback heuristic failed.
    pub fn on_fallback_error(&mut self) -> Decision {
        self.apply_lenient(ModeEvent::FallbackError)
    }

    /// Requests a hot-swap (enters the swap-pending window).
    pub fn request_swap(&mut self) {
        self.apply_lenient(ModeEvent::SwapRequest);
    }

    /// Commits the pending hot-swap.
    pub fn commit_swap(&mut self) {
        self.apply_lenient(ModeEvent::SwapCommit);
    }

    /// Marks the start of a crash-recovery replay.
    pub fn begin_recovery(&mut self) {
        self.apply_lenient(ModeEvent::RecoveryBegin);
    }

    /// Marks the end of a crash-recovery replay.
    pub fn end_recovery(&mut self) {
        self.apply_lenient(ModeEvent::RecoveryEnd);
    }

    /// Snapshot for a checkpoint (between invocation brackets).
    pub fn snapshot(&self) -> ModeSnapshot {
        ModeSnapshot {
            level: self.level,
            clean_streak: self.clean_streak,
            dirty_streak: self.dirty_streak,
            swap_pending: self.swap_pending,
            recovering: self.recovering,
            step: self.step,
            violations: self.violations,
        }
    }

    /// Restores a [`ModeSnapshot`] bit-exactly. The transition log and the
    /// first-violation diagnostic are cleared (telemetry, not state).
    pub fn restore(&mut self, snap: &ModeSnapshot) {
        self.level = snap.level;
        self.clean_streak = snap.clean_streak;
        self.dirty_streak = snap.dirty_streak;
        self.swap_pending = snap.swap_pending;
        self.recovering = snap.recovering;
        self.step = snap.step;
        self.violations = snap.violations;
        self.first_violation = None;
        self.in_bracket = false;
        self.claims = [None; 4];
        self.transitions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use SupervisorMode::{Fallback, Primary, Safe};

    fn cfg() -> ModeConfig {
        ModeConfig {
            reengage_after: 3,
            escalate_after: 4,
        }
    }

    /// Brackets one invocation with all knobs claimed by the serving level.
    fn full_bracket(a: &mut ModeAutomaton) {
        a.begin_invocation();
        let owner = level_label(a.level());
        for k in Knob::ALL {
            a.claim(k, owner);
        }
        a.end_invocation();
    }

    #[test]
    fn totality_every_state_event_pair_is_handled_without_panic() {
        // Walk the automaton into each level and feed it every event; the
        // outcome is always a Decision or a typed violation, never a panic
        // and never more than one level change.
        let events = [
            ModeEvent::Sample { clean: true },
            ModeEvent::Sample { clean: false },
            ModeEvent::PrimaryError,
            ModeEvent::FallbackError,
            ModeEvent::SwapRequest,
            ModeEvent::SwapCommit,
            ModeEvent::RecoveryBegin,
            ModeEvent::RecoveryEnd,
        ];
        for level in [Primary, Fallback, Safe] {
            for ev in events {
                let mut a = ModeAutomaton::new(cfg());
                // Drive to the target level through legal transitions.
                match level {
                    Primary => {}
                    Fallback => {
                        a.on_sample(false);
                    }
                    Safe => {
                        a.on_sample(false);
                        a.on_fallback_error();
                    }
                }
                assert_eq!(a.level(), level);
                match a.apply(ev) {
                    Ok(d) => {
                        assert_eq!(d.serve, a.level());
                        if let Some(ch) = d.change {
                            assert_eq!(ch.to, a.level());
                            assert_ne!(ch.from, ch.to, "level change must move");
                        }
                    }
                    Err(v) => {
                        assert_eq!(a.level(), level, "violation must not move the level");
                        assert_eq!(a.first_violation(), Some(v));
                        assert!(a.violations() >= 1);
                    }
                }
            }
        }
    }

    #[test]
    fn hysteresis_guard_matches_the_pre_refactor_state_machine() {
        // Replica of the pre-refactor supervisor's mode/streak logic, fed
        // the same clean/dirty sequence: serving decisions must agree
        // step for step (the zero-severity bit-identity anchor).
        let c = cfg();
        let mut auto = ModeAutomaton::new(c);
        let mut mode = Primary;
        let mut clean_streak = 0u32;
        // A fixed pseudo-random clean/dirty pattern covering demotion,
        // partial streaks, and re-engagement.
        let mut x = 0x9E37_79B9u32;
        for k in 0..200 {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            let clean = !x.is_multiple_of(5);
            // Pre-refactor ordering: streak update, promote, demote.
            if clean {
                clean_streak += 1;
            } else {
                clean_streak = 0;
            }
            if mode != Primary && clean_streak >= c.reengage_after {
                mode = match mode {
                    Safe => Fallback,
                    _ => Primary,
                };
                clean_streak = 0;
            }
            if mode == Primary && !clean {
                mode = Fallback;
                clean_streak = 0;
            }
            let d = auto.on_sample(clean);
            // The replica never escalates (old code had no escalation);
            // skip comparison once the automaton parks in Safe.
            if auto.level() == Safe {
                break;
            }
            assert_eq!(d.serve, mode, "sample {k}");
            assert_eq!(auto.clean_streak(), clean_streak, "sample {k}");
        }
        assert_eq!(auto.violations(), 0);
    }

    #[test]
    fn escalation_fires_after_sustained_dirt_and_recovers_through_fallback() {
        let c = cfg();
        let mut a = ModeAutomaton::new(c);
        a.on_sample(false);
        assert_eq!(a.level(), Fallback);
        // dirty_streak is already 1; escalation at >= escalate_after.
        for _ in 0..c.escalate_after - 2 {
            a.on_sample(false);
            assert_eq!(a.level(), Fallback);
        }
        let d = a.on_sample(false);
        assert_eq!(a.level(), Safe);
        assert_eq!(d.change.map(|ch| ch.cause), Some("escalation"));
        // Clean streak promotes Safe → Fallback → Primary, one level per
        // full streak.
        for _ in 0..c.reengage_after {
            a.on_sample(true);
        }
        assert_eq!(a.level(), Fallback);
        for _ in 0..c.reengage_after {
            a.on_sample(true);
        }
        assert_eq!(a.level(), Primary);
        assert_eq!(a.violations(), 0);
    }

    #[test]
    fn dual_writer_and_actuation_gap_are_caught() {
        let mut a = ModeAutomaton::new(cfg());
        a.begin_invocation();
        a.claim(Knob::Dvfs, "primary");
        a.claim(Knob::Dvfs, "fallback"); // second writer on the same knob
        a.claim(Knob::Hotplug, "primary");
        a.claim(Knob::Admission, "admission");
        // Migration never claimed.
        a.end_invocation();
        assert_eq!(a.violations(), 2);
        assert_eq!(
            a.first_violation(),
            Some(InvariantViolation::DualWriter {
                knob: Knob::Dvfs,
                first: "primary",
                second: "fallback",
            })
        );
    }

    #[test]
    fn unclaimed_admission_knob_is_an_actuation_gap() {
        // Shedding is part of the no-actuation-gap contract: a bracket
        // that writes everything except the admission knob leaves the
        // door policy undefined for that invocation.
        let mut a = ModeAutomaton::new(cfg());
        a.begin_invocation();
        for k in [Knob::Dvfs, Knob::Hotplug, Knob::Migration] {
            a.claim(k, "primary");
        }
        a.end_invocation();
        assert_eq!(a.violations(), 1);
        assert_eq!(
            a.first_violation(),
            Some(InvariantViolation::ActuationGap {
                step: 1,
                knob: Knob::Admission,
            })
        );
    }

    #[test]
    fn complete_bracket_records_no_violation() {
        let mut a = ModeAutomaton::new(cfg());
        for _ in 0..10 {
            full_bracket(&mut a);
        }
        assert_eq!(a.violations(), 0);
        assert_eq!(a.snapshot().step, 10);
    }

    #[test]
    fn swap_protocol_guards_reentry_and_commit_without_request() {
        let mut a = ModeAutomaton::new(cfg());
        assert!(
            a.apply(ModeEvent::SwapCommit).is_err(),
            "commit w/o request"
        );
        assert!(a.apply(ModeEvent::SwapRequest).is_ok());
        assert!(a.swap_pending());
        assert!(a.apply(ModeEvent::SwapRequest).is_err(), "re-entrant swap");
        assert!(a.apply(ModeEvent::SwapCommit).is_ok());
        assert!(!a.swap_pending());
        assert_eq!(a.violations(), 2);
    }

    #[test]
    fn recovery_protocol_guards_double_begin_and_stray_end() {
        let mut a = ModeAutomaton::new(cfg());
        assert!(a.apply(ModeEvent::RecoveryEnd).is_err());
        assert!(a.apply(ModeEvent::RecoveryBegin).is_ok());
        assert!(a.recovering());
        assert!(a.apply(ModeEvent::RecoveryBegin).is_err());
        assert!(a.apply(ModeEvent::RecoveryEnd).is_ok());
        assert!(!a.recovering());
    }

    #[test]
    fn snapshot_roundtrips_mid_episode_bit_for_bit() {
        let c = cfg();
        let mut a = ModeAutomaton::new(c);
        a.on_sample(false); // demote
        a.on_sample(true);
        a.on_sample(true); // partial clean streak
        a.request_swap(); // pending swap survives the snapshot
        full_bracket(&mut a);
        let snap = a.snapshot();
        let mut b = ModeAutomaton::new(c);
        b.restore(&snap);
        assert_eq!(b.snapshot(), snap);
        // Both continue identically.
        for k in 0..20 {
            let clean = k % 3 != 0;
            assert_eq!(a.on_sample(clean), b.on_sample(clean), "sample {k}");
            assert_eq!(a.state(), b.state(), "sample {k}");
        }
    }

    #[test]
    fn transition_log_drains_and_labels_causes() {
        let mut a = ModeAutomaton::new(cfg());
        a.on_sample(false);
        a.request_swap();
        a.commit_swap();
        let t = a.drain_transitions();
        assert_eq!(
            t.iter().map(|r| r.cause).collect::<Vec<_>>(),
            vec!["fault_evidence", "swap_request", "swap_commit"]
        );
        assert!(a.drain_transitions().is_empty(), "drained");
    }

    #[test]
    fn primary_error_outside_primary_is_a_typed_violation() {
        let mut a = ModeAutomaton::new(cfg());
        a.on_sample(false);
        assert_eq!(a.level(), Fallback);
        let err = a.apply(ModeEvent::PrimaryError);
        assert_eq!(
            err,
            Err(InvariantViolation::IllegalEvent {
                level: Fallback,
                event: ModeEvent::PrimaryError,
            })
        );
        assert_eq!(a.level(), Fallback, "fail-safe: keeps serving");
    }
}
