//! Runtime supervisor: fault containment and graceful degradation.
//!
//! The paper's controllers assume honest sensors and obedient actuators.
//! Under the fault-injection harness (`yukta_board::faults`) neither holds,
//! so every controller invocation is routed through a [`Supervisor`] that
//!
//! 1. **sanitizes** the sensor view — non-finite readings are replaced with
//!    the last good value, physically impossible readings are clamped to
//!    the plant's envelope;
//! 2. **watches for stuck sensors** — a reading whose bit pattern repeats
//!    for [`SupervisorConfig::stuck_window`] consecutive samples is flagged
//!    (the 260 ms INA231 windows and the noisy TMU sensor make genuine
//!    bit-identical repeats vanishingly unlikely);
//! 3. **degrades gracefully** — on any fault evidence or a typed controller
//!    error the model-based scheme is demoted to the *coordinated
//!    heuristic* (the paper's strongest baseline, memoryless and
//!    conservative), and if even that fails — or the fault evidence is
//!    sustained for [`SupervisorConfig::escalate_after`] samples — to a
//!    fixed safe static configuration;
//! 4. **re-engages with hysteresis** — after
//!    [`SupervisorConfig::reengage_after`] consecutive clean samples the
//!    demoted controller is reset (stale estimator state from the faulty
//!    episode is discarded) and promoted one level;
//! 5. **saturates actuations** — commands outside the board's legal range
//!    are clamped, and a long streak of clamped samples triggers an
//!    anti-windup reset of the primary controller's internal state.
//!
//! The mode decisions themselves (which level serves, when to demote,
//! when to re-engage, the swap/recovery protocol) live in one checked
//! state machine — [`crate::modes::ModeAutomaton`] — and the supervisor is
//! a thin driver: it feeds the automaton events (sample cleanliness,
//! controller errors) and performs the matching actions (controller
//! resets, fresh fallbacks, counters). Every invocation runs inside an
//! automaton bracket that asserts single-writer-per-knob and no actuation
//! gap; violations are counted in
//! [`SupervisorStats::invariant_violations`] (zero in any correct run).
//!
//! Everything the supervisor does is pure `f64` arithmetic with no
//! randomness, so supervised runs stay bit-reproducible; with no faults
//! injected the supervisor is exactly transparent (clean samples take the
//! primary path and in-range values are returned bit-identically).

use serde::{Deserialize, Serialize};

use yukta_linalg::{Error, Result};

use crate::controllers::heuristic::{CoordinatedHeuristicHw, CoordinatedHeuristicOs};
use crate::controllers::{HwPolicy, HwSense, OsPolicy, OsSense};
use crate::modes::{
    InvariantViolation, Knob, LevelChange, ModeAutomaton, ModeConfig, ModeSnapshot,
    TransitionRecord, level_label,
};
use crate::schemes::{Controllers, ControllersState};
use crate::signals::{HwInputs, HwOutputs, Limits, OsInputs, OsOutputs, SloSense};

fn default_escalate_after() -> u32 {
    24
}

/// Overload-protection policy: when the serving layer's tail latency blows
/// past the SLO for a sustained streak, the supervisor sheds a fraction of
/// incoming requests (admission control) instead of letting the backlog
/// melt down. Shedding is an actuation like any other: the supervisor is
/// the single writer of the [`Knob::Admission`] knob, and the shed
/// fraction moves hysteretically (engage high, release low) so admission
/// does not flap at the SLO boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShedPolicy {
    /// p99/SLO ratio at or above which a sample counts as overloaded.
    pub engage_ratio: f64,
    /// p99/SLO ratio at or below which shedding decays one step
    /// (hysteresis: between `release_ratio` and `engage_ratio` the shed
    /// fraction holds).
    pub release_ratio: f64,
    /// Backlog fraction at or above which a sample counts as overloaded
    /// regardless of latency (the queue is about to reject).
    pub backlog_hi: f64,
    /// Consecutive overloaded samples before shedding engages or ramps.
    pub overload_after: u32,
    /// Shed-fraction increment (and decay) per qualifying sample.
    pub shed_step: f64,
    /// Shed-fraction ceiling; Safe mode pins admission here.
    pub shed_max: f64,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        ShedPolicy {
            engage_ratio: 1.0,  // shed only once the SLO is actually violated
            release_ratio: 0.7, // 30% hysteresis band against flapping
            backlog_hi: 0.9,    // queue nearly full → shed regardless
            overload_after: 4,  // 2 s of sustained overload at 500 ms
            shed_step: 0.1,
            shed_max: 0.9, // never black-hole the service completely
        }
    }
}

impl ShedPolicy {
    /// Rejects non-finite, negative, or flapping-prone shed thresholds
    /// with typed errors.
    ///
    /// # Errors
    ///
    /// [`yukta_linalg::Error::NoSolution`] naming the offending knob.
    pub fn validate(&self) -> Result<()> {
        let finite = [
            self.engage_ratio,
            self.release_ratio,
            self.backlog_hi,
            self.shed_step,
            self.shed_max,
        ]
        .iter()
        .all(|v| v.is_finite());
        if !finite {
            return Err(Error::NoSolution {
                op: "shed_policy",
                why: "shed thresholds must be finite",
            });
        }
        if self.engage_ratio <= 0.0 || self.release_ratio <= 0.0 {
            return Err(Error::NoSolution {
                op: "shed_policy",
                why: "overload ratios must be positive",
            });
        }
        if self.release_ratio >= self.engage_ratio {
            return Err(Error::NoSolution {
                op: "shed_policy",
                why: "release_ratio >= engage_ratio leaves no hysteresis band (admission flapping)",
            });
        }
        if !(0.0..=1.0).contains(&self.backlog_hi) {
            return Err(Error::NoSolution {
                op: "shed_policy",
                why: "backlog_hi must lie in [0, 1]",
            });
        }
        if self.shed_step <= 0.0 || self.shed_step > 1.0 {
            return Err(Error::NoSolution {
                op: "shed_policy",
                why: "shed_step must lie in (0, 1]",
            });
        }
        if !(0.0..1.0).contains(&self.shed_max) {
            return Err(Error::NoSolution {
                op: "shed_policy",
                why: "shed_max must lie in [0, 1) — shedding everything forever is an outage",
            });
        }
        if self.overload_after < 2 {
            return Err(Error::NoSolution {
                op: "shed_policy",
                why: "overload_after < 2 sheds on a single slow sample (admission flapping)",
            });
        }
        Ok(())
    }
}

/// Tuning knobs of the supervisor's fault handling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupervisorConfig {
    /// Consecutive clean samples required before a demoted controller is
    /// promoted one level (Safe → Fallback → Primary).
    pub reengage_after: u32,
    /// Consecutive bit-identical non-zero readings of one sensor channel
    /// that count as a stuck sensor.
    pub stuck_window: u32,
    /// Consecutive samples with at least one clamped actuation before the
    /// primary controller's state is reset (anti-windup freeze).
    pub windup_reset_after: u32,
    /// Consecutive dirty samples in Fallback before escalating to Safe
    /// (sustained correlated faults defeat the heuristic's sensor view).
    #[serde(default = "default_escalate_after")]
    pub escalate_after: u32,
    /// Overload-protection (load-shedding) policy for request-serving runs.
    #[serde(default)]
    pub shed: ShedPolicy,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            reengage_after: 6,                        // 3 s of clean telemetry at 500 ms
            stuck_window: 4,                          // 2 s of frozen readings
            windup_reset_after: 8,                    // 4 s of continuous saturation
            escalate_after: default_escalate_after(), // 12 s of sustained dirt
            shed: ShedPolicy::default(),
        }
    }
}

impl SupervisorConfig {
    /// Rejects flapping-prone or degenerate configurations with typed
    /// errors (mirroring `DkOptions::validate`). Checked at every unified
    /// runtime entry point before a supervisor is constructed.
    ///
    /// # Errors
    ///
    /// [`yukta_linalg::Error::NoSolution`] naming the offending knob.
    pub fn validate(&self) -> Result<()> {
        if self.reengage_after < 2 {
            return Err(Error::NoSolution {
                op: "supervisor_config",
                why: "reengage_after < 2 re-engages on a single clean sample (mode flapping)",
            });
        }
        if self.stuck_window < 2 {
            return Err(Error::NoSolution {
                op: "supervisor_config",
                why: "stuck_window < 2 flags every reading as stuck",
            });
        }
        if self.windup_reset_after < 1 {
            return Err(Error::NoSolution {
                op: "supervisor_config",
                why: "windup_reset_after must be at least 1",
            });
        }
        if self.escalate_after < 2 {
            return Err(Error::NoSolution {
                op: "supervisor_config",
                why: "escalate_after < 2 escalates on the first dirty sample (mode flapping)",
            });
        }
        self.shed.validate()
    }

    /// The automaton guard thresholds this configuration induces.
    pub fn mode_config(&self) -> ModeConfig {
        ModeConfig {
            reengage_after: self.reengage_after,
            escalate_after: self.escalate_after,
        }
    }
}

/// Which controller is currently in charge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SupervisorMode {
    /// The scheme under test.
    Primary,
    /// The coordinated heuristic (graceful degradation).
    Fallback,
    /// A fixed safe static configuration (last resort).
    Safe,
}

/// Fault-handling counters surfaced in [`crate::metrics::Report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SupervisorStats {
    /// Non-finite sensor readings replaced with the last good value.
    pub nonfinite_repairs: u64,
    /// Physically impossible readings clamped into the plant envelope.
    pub range_clamps: u64,
    /// Stuck-sensor episodes detected by the watchdog.
    pub stuck_detections: u64,
    /// Typed errors (or non-finite outputs) from a controller invocation.
    pub controller_errors: u64,
    /// Actuation components clamped into the legal range.
    pub actuation_clamps: u64,
    /// Anti-windup state resets after sustained actuation clamping.
    pub windup_resets: u64,
    /// Primary → Fallback demotions.
    pub fallback_entries: u64,
    /// Fallback → Primary promotions (hysteresis re-engagements).
    pub fallback_exits: u64,
    /// Fallback → Safe demotions (fallback errors or sustained dirt).
    pub safe_entries: u64,
    /// Total supervised invocations.
    pub invocations: u64,
    /// Invocations served by Fallback or Safe.
    pub degraded_invocations: u64,
    /// Mode-automaton invariant violations (actuation gaps, dual writers,
    /// flapping, illegal events). Zero in any correct run.
    #[serde(default)]
    pub invariant_violations: u64,
    /// Load-shedding engagements: transitions of the shed fraction from
    /// zero to positive (one per overload episode).
    #[serde(default)]
    pub shed_engagements: u64,
}

impl SupervisorStats {
    /// Simulated seconds spent outside Primary (500 ms per invocation).
    pub fn degraded_seconds(&self) -> f64 {
        self.degraded_invocations as f64 * 0.5
    }

    /// Total sensor-fault observations (repairs + clamps + stuck episodes).
    pub fn sensor_faults_seen(&self) -> u64 {
        self.nonfinite_repairs + self.range_clamps + self.stuck_detections
    }
}

/// Per-channel stuck-sensor state.
#[derive(Debug, Clone, Copy, Default)]
struct StuckChannel {
    last_bits: u64,
    repeats: u32,
}

/// Complete resumable snapshot of a [`Supervisor`], including the wrapped
/// primary controllers. The fallback heuristics are memoryless and are
/// rebuilt fresh on restore. Produced by [`Supervisor::save_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorState {
    /// Snapshot of the mode automaton (level, streaks, swap/recovery
    /// phase, step counter).
    pub automaton: ModeSnapshot,
    /// Consecutive actuation-clamped samples toward an anti-windup reset.
    pub clamp_streak: u32,
    /// Stuck-sensor watchdogs as `(last_bits, repeats)` per channel
    /// (p_big, p_little, temp).
    pub watchdogs: [(u64, u32); 3],
    /// Last sanitized hardware-layer outputs.
    pub last_good_hw: HwOutputs,
    /// Last sanitized software-layer outputs.
    pub last_good_os: OsOutputs,
    /// Current admission shed fraction.
    pub shed_frac: f64,
    /// Consecutive overloaded samples toward a shed engagement.
    pub overload_streak: u32,
    /// Counters accumulated so far.
    pub stats: SupervisorStats,
    /// Snapshot of the wrapped primary controllers.
    pub primary: ControllersState,
}

/// Physical plausibility rails for sanitization. Values outside these are
/// impossible on the XU3 envelope and get clamped (and counted).
const PERF_RAIL: (f64, f64) = (0.0, 200.0);
const P_BIG_RAIL: (f64, f64) = (0.0, 15.0);
const P_LITTLE_RAIL: (f64, f64) = (0.0, 3.0);
const TEMP_RAIL: (f64, f64) = (0.0, 130.0);
// Spare capacity per cluster spans roughly −7 (1 core, 8 threads) to +8
// (4 idle cores), so the big−little difference can reach ±15.
const SPARE_RAIL: (f64, f64) = (-16.0, 16.0);

/// The last-resort operating point: big cluster parked at one slow core,
/// all threads on the little cluster at a modest frequency. Thermally and
/// electrically safe by a wide margin while still making progress.
fn safe_static(active_threads: usize) -> (HwInputs, OsInputs) {
    (
        HwInputs {
            big_cores: 1.0,
            little_cores: 4.0,
            f_big: 0.2,
            f_little: 0.8,
        },
        OsInputs {
            threads_big: 0.0,
            packing_big: 1.0,
            packing_little: ((active_threads as f64) / 4.0).max(1.0),
        },
    )
}

fn finite_hw(u: &HwInputs) -> bool {
    u.to_vec().iter().all(|v| v.is_finite())
}

fn finite_os(u: &OsInputs) -> bool {
    u.to_vec().iter().all(|v| v.is_finite())
}

/// Repairs one sensor field in place; returns `true` if it was touched.
fn repair(v: &mut f64, rail: (f64, f64), last_good: f64, stats: &mut SupervisorStats) -> bool {
    if !v.is_finite() {
        *v = last_good;
        stats.nonfinite_repairs += 1;
        true
    } else if *v < rail.0 || *v > rail.1 {
        *v = v.clamp(rail.0, rail.1);
        stats.range_clamps += 1;
        true
    } else {
        false
    }
}

/// Wraps a scheme's controllers with fault detection, fallback, and
/// actuation saturation. Mode decisions flow through the checked
/// [`ModeAutomaton`]; see the module docs for the full state machine.
pub struct Supervisor {
    cfg: SupervisorConfig,
    primary: Controllers,
    fb_hw: CoordinatedHeuristicHw,
    fb_os: CoordinatedHeuristicOs,
    auto: ModeAutomaton,
    clamp_streak: u32,
    watchdogs: [StuckChannel; 3],
    last_good_hw: HwOutputs,
    last_good_os: OsOutputs,
    shed_frac: f64,
    overload_streak: u32,
    stats: SupervisorStats,
}

impl Supervisor {
    /// Supervises `primary` with the given configuration.
    pub fn new(primary: Controllers, cfg: SupervisorConfig) -> Self {
        Supervisor {
            cfg,
            primary,
            fb_hw: CoordinatedHeuristicHw::new(),
            fb_os: CoordinatedHeuristicOs::new(),
            auto: ModeAutomaton::new(cfg.mode_config()),
            clamp_streak: 0,
            watchdogs: [StuckChannel::default(); 3],
            last_good_hw: HwOutputs::default(),
            last_good_os: OsOutputs::default(),
            shed_frac: 0.0,
            overload_streak: 0,
            stats: SupervisorStats::default(),
        }
    }

    /// The admission shed fraction currently in force: the fraction of
    /// incoming requests the serving layer must drop at the door. Zero
    /// unless the overload governor engaged; Safe mode pins it at
    /// [`ShedPolicy::shed_max`] (a degraded configuration cannot absorb
    /// open-loop traffic, so admission is throttled along with everything
    /// else).
    pub fn shed_frac(&self) -> f64 {
        if self.auto.level() == SupervisorMode::Safe {
            self.shed_frac.max(self.cfg.shed.shed_max)
        } else {
            self.shed_frac
        }
    }

    /// Hysteretic overload governor: one step per supervised invocation.
    /// Inactive SLO observations (batch runs) keep the shed fraction at
    /// exactly zero, so non-serving executions are bit-identical to the
    /// pre-serving supervisor.
    fn shed_step(&mut self, slo: &SloSense, limits: &Limits) {
        if !slo.active {
            self.shed_frac = 0.0;
            self.overload_streak = 0;
            return;
        }
        let p = self.cfg.shed;
        // latency_slo_s is validated positive at the runtime entry points;
        // guard anyway so a hostile Limits cannot poison the governor.
        let bound = if limits.latency_slo_s > 0.0 && limits.latency_slo_s.is_finite() {
            limits.latency_slo_s
        } else {
            1.0
        };
        let ratio = slo.p99_s / bound;
        let overloaded = ratio >= p.engage_ratio || slo.backlog_frac >= p.backlog_hi;
        if overloaded {
            self.overload_streak = self.overload_streak.saturating_add(1);
            if self.overload_streak >= p.overload_after {
                if self.shed_frac == 0.0 {
                    self.stats.shed_engagements += 1;
                }
                self.shed_frac = (self.shed_frac + p.shed_step).min(p.shed_max);
            }
        } else {
            self.overload_streak = 0;
            if ratio <= p.release_ratio && slo.backlog_frac < p.backlog_hi {
                self.shed_frac = (self.shed_frac - p.shed_step).max(0.0);
            }
            // Between release and engage: hold (the hysteresis band).
        }
    }

    /// The controller level currently in charge.
    pub fn mode(&self) -> SupervisorMode {
        self.auto.level()
    }

    /// Fault-handling counters so far, including the automaton's invariant
    /// violation count.
    pub fn stats(&self) -> SupervisorStats {
        let mut s = self.stats;
        s.invariant_violations = self.auto.violations();
        s
    }

    /// Invariant violations recorded by the mode automaton (zero in any
    /// correct run).
    pub fn violations(&self) -> u64 {
        self.auto.violations()
    }

    /// The first invariant violation recorded, if any (diagnostic).
    pub fn first_violation(&self) -> Option<InvariantViolation> {
        self.auto.first_violation()
    }

    /// Drains the automaton's transition log for telemetry.
    pub fn drain_transitions(&mut self) -> Vec<TransitionRecord> {
        self.auto.drain_transitions()
    }

    /// Whether a hot-swap has been requested but not yet committed.
    pub fn swap_pending(&self) -> bool {
        self.auto.swap_pending()
    }

    /// Enters the swap-pending window (replacement being prepared). The
    /// commit happens in [`Supervisor::swap_primary`].
    pub fn request_swap(&mut self) {
        self.auto.request_swap();
    }

    /// Marks the start of a crash-recovery replay.
    pub fn begin_recovery(&mut self) {
        self.auto.begin_recovery();
    }

    /// Marks the end of a crash-recovery replay.
    pub fn end_recovery(&mut self) {
        self.auto.end_recovery();
    }

    /// A label combining the supervised controllers' names.
    pub fn label(&self) -> String {
        format!("supervised({})", self.primary.label())
    }

    /// Snapshots the complete supervisor state (mode automaton, watchdogs,
    /// hysteresis counters, stats, and the wrapped primary controllers)
    /// for a checkpoint.
    pub fn save_state(&self) -> SupervisorState {
        SupervisorState {
            automaton: self.auto.snapshot(),
            clamp_streak: self.clamp_streak,
            watchdogs: [
                (self.watchdogs[0].last_bits, self.watchdogs[0].repeats),
                (self.watchdogs[1].last_bits, self.watchdogs[1].repeats),
                (self.watchdogs[2].last_bits, self.watchdogs[2].repeats),
            ],
            last_good_hw: self.last_good_hw,
            last_good_os: self.last_good_os,
            shed_frac: self.shed_frac,
            overload_streak: self.overload_streak,
            stats: self.stats(),
            primary: self.primary.save_state(),
        }
    }

    /// Restores a snapshot taken by [`Supervisor::save_state`] into a
    /// supervisor wrapping a freshly instantiated copy of the same scheme.
    /// After a restore, subsequent [`Supervisor::step`] calls reproduce
    /// the checkpointed instance bit-identically.
    ///
    /// # Errors
    ///
    /// [`yukta_linalg::Error::NoSolution`] if the primary-controller
    /// snapshot does not match the wrapped scheme.
    pub fn restore_state(&mut self, state: &SupervisorState) -> Result<()> {
        self.primary.restore_state(&state.primary)?;
        self.fb_hw = CoordinatedHeuristicHw::new();
        self.fb_os = CoordinatedHeuristicOs::new();
        self.auto.restore(&state.automaton);
        self.clamp_streak = state.clamp_streak;
        for (w, &(bits, repeats)) in self.watchdogs.iter_mut().zip(&state.watchdogs) {
            w.last_bits = bits;
            w.repeats = repeats;
        }
        self.last_good_hw = state.last_good_hw;
        self.last_good_os = state.last_good_os;
        self.shed_frac = state.shed_frac;
        self.overload_streak = state.overload_streak;
        self.stats = state.stats;
        Ok(())
    }

    /// Hot-swaps the primary controllers for a freshly synthesized
    /// replacement without interrupting supervision. The current primary
    /// state is transferred into `next` when the shapes match (bumpless
    /// transfer); otherwise `next` starts from a clean reset. Mode
    /// machine, watchdogs, and fallbacks are untouched, so the swap
    /// introduces no actuation gap.
    ///
    /// The swap is routed through the automaton's request→commit protocol;
    /// callers that staged the swap earlier (entering the crash-vulnerable
    /// window) use [`Supervisor::request_swap`] first, and this call
    /// commits it. A direct call is an atomic request+commit.
    ///
    /// Returns `true` when the transfer was bumpless.
    pub fn swap_primary(&mut self, mut next: Controllers) -> bool {
        if !self.auto.swap_pending() {
            self.auto.request_swap();
        }
        let saved = self.primary.save_state();
        let bumpless = next.restore_state(&saved).is_ok();
        if !bumpless {
            next.reset();
        }
        self.primary = next;
        self.auto.commit_swap();
        bumpless
    }

    /// Performs the driver action matching an automaton level change:
    /// reset the controller being engaged (stale state from the previous
    /// episode must not leak forward) and bump the matching counter.
    fn apply_change(&mut self, change: Option<LevelChange>) {
        let Some(ch) = change else { return };
        match (ch.from, ch.to) {
            (SupervisorMode::Fallback, SupervisorMode::Primary) => {
                self.primary.reset();
                self.stats.fallback_exits += 1;
            }
            (SupervisorMode::Safe, SupervisorMode::Fallback) => {
                self.fb_hw = CoordinatedHeuristicHw::new();
                self.fb_os = CoordinatedHeuristicOs::new();
            }
            (SupervisorMode::Primary, SupervisorMode::Fallback) => {
                self.fb_hw = CoordinatedHeuristicHw::new();
                self.fb_os = CoordinatedHeuristicOs::new();
                self.stats.fallback_entries += 1;
            }
            (SupervisorMode::Fallback, SupervisorMode::Safe) => {
                self.stats.safe_entries += 1;
            }
            _ => {}
        }
    }

    /// One supervised controller invocation. Never panics and never
    /// returns non-finite or out-of-range actuations, whatever the senses
    /// contain.
    pub fn step(&mut self, hw_raw: &HwSense, os_raw: &OsSense) -> (HwInputs, OsInputs) {
        self.auto.begin_invocation();
        self.stats.invocations += 1;
        let mut hw = *hw_raw;
        let mut os = *os_raw;
        let mut clean = true;

        // Stuck-sensor watchdog on the raw bit patterns (sanitized values
        // would alias genuinely distinct faults onto one clamped rail).
        if self.watchdog_step(&hw_raw.outputs) {
            clean = false;
        }

        // Sanitize the measured outputs of both layers.
        let lg = self.last_good_hw;
        let s = &mut self.stats;
        let mut touched = false;
        touched |= repair(&mut hw.outputs.perf, PERF_RAIL, lg.perf, s);
        touched |= repair(&mut hw.outputs.p_big, P_BIG_RAIL, lg.p_big, s);
        touched |= repair(&mut hw.outputs.p_little, P_LITTLE_RAIL, lg.p_little, s);
        touched |= repair(&mut hw.outputs.temp, TEMP_RAIL, lg.temp, s);
        let lg = self.last_good_os;
        touched |= repair(&mut os.outputs.perf_little, PERF_RAIL, lg.perf_little, s);
        touched |= repair(&mut os.outputs.perf_big, PERF_RAIL, lg.perf_big, s);
        touched |= repair(&mut os.outputs.spare_diff, SPARE_RAIL, lg.spare_diff, s);
        // The OS layer reads the same sysfs files as the hardware layer:
        // give it the same sanitized view.
        os.system = hw.outputs;
        if touched {
            clean = false;
        }
        self.last_good_hw = hw.outputs;
        self.last_good_os = os.outputs;

        // Overload governor: walk the admission shed fraction from the
        // serving layer's tail-latency observation. Overload evidence is
        // deliberately NOT fault evidence — demoting the controller under
        // load would slow the plant exactly when it must speed up; the
        // governor sheds at the door instead.
        self.shed_step(&hw.slo, &hw.limits);

        // One sample event: hysteresis re-engagement, fault-evidence
        // demotion, and sustained-dirt escalation all fire (at most one)
        // inside the automaton.
        let d = self.auto.on_sample(clean);
        self.apply_change(d.change);

        let (hw_u, os_u) = match self.auto.level() {
            SupervisorMode::Primary => match self.invoke_primary(&hw, &os) {
                Some(u) => u,
                None => {
                    let d = self.auto.on_primary_error();
                    self.apply_change(d.change);
                    self.invoke_fallback(&hw, &os)
                }
            },
            SupervisorMode::Fallback => self.invoke_fallback(&hw, &os),
            SupervisorMode::Safe => safe_static(os.active_threads),
        };

        // Saturate onto the legal actuation ranges; count what was touched.
        let (hw_u, os_u, clamps) = self.saturate(hw_u, os_u, os.active_threads);
        if clamps > 0 {
            self.stats.actuation_clamps += clamps;
            self.clamp_streak += 1;
            if self.clamp_streak >= self.cfg.windup_reset_after {
                // Anti-windup: a controller pinned at its limits for this
                // long has accumulated phantom state — freeze it out.
                self.primary.reset();
                self.stats.windup_resets += 1;
                self.clamp_streak = 0;
            }
        } else {
            self.clamp_streak = 0;
        }

        // Close the invocation bracket: the serving level is the single
        // writer of the three plant knobs this step (the TMU only caps),
        // and the overload governor is the single writer of admission.
        let owner = level_label(self.auto.level());
        self.auto.claim(Knob::Dvfs, owner);
        self.auto.claim(Knob::Hotplug, owner);
        self.auto.claim(Knob::Migration, owner);
        self.auto.claim(Knob::Admission, "admission");
        self.auto.end_invocation();

        if self.auto.level() != SupervisorMode::Primary {
            self.stats.degraded_invocations += 1;
        }
        (hw_u, os_u)
    }

    /// Returns `true` if any sensor channel is currently stuck.
    fn watchdog_step(&mut self, y: &HwOutputs) -> bool {
        let vals = [y.p_big, y.p_little, y.temp];
        let mut any = false;
        for (w, v) in self.watchdogs.iter_mut().zip(vals) {
            let bits = v.to_bits();
            // The startup zero before the first 260 ms power window is not
            // a stuck sensor (see `PowerSensor::has_reading`).
            if bits == w.last_bits && v != 0.0 {
                w.repeats += 1;
            } else {
                w.repeats = 0;
                w.last_bits = bits;
            }
            if w.repeats + 1 >= self.cfg.stuck_window {
                any = true;
                if w.repeats + 1 == self.cfg.stuck_window {
                    self.stats.stuck_detections += 1;
                }
            }
        }
        any
    }

    /// Invokes the scheme under test; `None` on typed error or non-finite
    /// output (both count as controller errors).
    fn invoke_primary(&mut self, hw: &HwSense, os: &OsSense) -> Option<(HwInputs, OsInputs)> {
        let out = match &mut self.primary {
            Controllers::Split { hw: h, os: o } => match (h.invoke(hw), o.invoke(os)) {
                (Ok(hu), Ok(ou)) => Some((hu, ou)),
                _ => None,
            },
            Controllers::Monolithic(m) => m.invoke(hw, os).ok(),
        };
        match out {
            Some((hu, ou)) if finite_hw(&hu) && finite_os(&ou) => Some((hu, ou)),
            _ => {
                self.stats.controller_errors += 1;
                None
            }
        }
    }

    /// Invokes the coordinated heuristic; drops to Safe (through the
    /// automaton) if even that fails.
    fn invoke_fallback(&mut self, hw: &HwSense, os: &OsSense) -> (HwInputs, OsInputs) {
        match (self.fb_hw.invoke(hw), self.fb_os.invoke(os)) {
            (Ok(hu), Ok(ou)) if finite_hw(&hu) && finite_os(&ou) => (hu, ou),
            _ => {
                self.stats.controller_errors += 1;
                let d = self.auto.on_fallback_error();
                self.apply_change(d.change);
                safe_static(os.active_threads)
            }
        }
    }

    /// Clamps both actuation vectors onto the board's legal ranges.
    /// In-range values pass through bit-identically.
    fn saturate(
        &mut self,
        mut hw_u: HwInputs,
        mut os_u: OsInputs,
        active_threads: usize,
    ) -> (HwInputs, OsInputs, u64) {
        if !finite_hw(&hw_u) || !finite_os(&os_u) {
            // Unreachable from the paths above, but keep the guarantee
            // airtight: a non-finite command becomes the safe config.
            self.stats.controller_errors += 1;
            let (h, o) = safe_static(active_threads);
            return (h, o, 1);
        }
        // Normalize→denormalize round trips leave legal commands a few ulps
        // outside their range; the board's own snapping maps those to the
        // same operating point, so they are clamped silently. Only
        // materially out-of-range commands count toward anti-windup.
        const CLAMP_TOL: f64 = 1e-9;
        let mut clamps = 0u64;
        let mut cl = |v: &mut f64, lo: f64, hi: f64| {
            let c = v.clamp(lo, hi);
            if c != *v {
                if (c - *v).abs() > CLAMP_TOL {
                    clamps += 1;
                }
                *v = c;
            }
        };
        cl(&mut hw_u.big_cores, 1.0, 4.0);
        cl(&mut hw_u.little_cores, 1.0, 4.0);
        cl(&mut hw_u.f_big, 0.2, 2.0);
        cl(&mut hw_u.f_little, 0.2, 1.4);
        cl(&mut os_u.threads_big, 0.0, active_threads as f64);
        cl(&mut os_u.packing_big, 1.0, 4.0);
        cl(&mut os_u.packing_little, 1.0, 4.0);
        (hw_u, os_u, clamps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controllers::heuristic::{DecoupledHeuristicHw, DecoupledHeuristicOs};
    use crate::signals::Limits;
    use yukta_linalg::{Error, Result};

    fn heuristic_primary() -> Controllers {
        Controllers::Split {
            hw: Box::new(DecoupledHeuristicHw::new()),
            os: Box::new(DecoupledHeuristicOs::new()),
        }
    }

    fn clean_hw_sense() -> HwSense {
        HwSense {
            outputs: HwOutputs {
                perf: 3.0,
                p_big: 2.0,
                p_little: 0.2,
                temp: 60.0,
            },
            ext: OsInputs {
                threads_big: 4.0,
                packing_big: 1.0,
                packing_little: 1.0,
            },
            current: HwInputs {
                big_cores: 4.0,
                little_cores: 4.0,
                f_big: 1.0,
                f_little: 1.0,
            },
            active_threads: 8,
            slo: Default::default(),
            limits: Limits::default(),
        }
    }

    fn clean_os_sense() -> OsSense {
        OsSense {
            outputs: OsOutputs {
                perf_little: 0.3,
                perf_big: 2.0,
                spare_diff: 0.0,
            },
            ext: HwInputs {
                big_cores: 4.0,
                little_cores: 4.0,
                f_big: 1.0,
                f_little: 1.0,
            },
            current: OsInputs {
                threads_big: 4.0,
                packing_big: 1.0,
                packing_little: 1.0,
            },
            active_threads: 8,
            system: HwOutputs {
                perf: 3.0,
                p_big: 2.0,
                p_little: 0.2,
                temp: 60.0,
            },
            slo: Default::default(),
            limits: Limits::default(),
        }
    }

    /// Varies the noisy channels so the stuck watchdog never trips on the
    /// synthetic fixtures.
    fn jitter(hw: &mut HwSense, os: &mut OsSense, k: usize) {
        let eps = 1e-9 * (k as f64 + 1.0);
        hw.outputs.p_big += eps;
        hw.outputs.p_little += eps;
        hw.outputs.temp += eps;
        os.system = hw.outputs;
    }

    #[test]
    fn clean_samples_stay_primary_and_transparent() {
        let mut sup = Supervisor::new(heuristic_primary(), SupervisorConfig::default());
        let mut bare_hw = DecoupledHeuristicHw::new();
        let mut bare_os = DecoupledHeuristicOs::new();
        for k in 0..20 {
            let mut hw = clean_hw_sense();
            let mut os = clean_os_sense();
            jitter(&mut hw, &mut os, k);
            let (hu, ou) = sup.step(&hw, &os);
            let expect_h = bare_hw.invoke(&hw).unwrap();
            let expect_o = bare_os.invoke(&os).unwrap();
            assert_eq!(hu, expect_h, "sample {k}");
            assert_eq!(ou, expect_o, "sample {k}");
        }
        assert_eq!(sup.mode(), SupervisorMode::Primary);
        let st = sup.stats();
        assert_eq!(st.sensor_faults_seen(), 0);
        assert_eq!(st.fallback_entries, 0);
        assert_eq!(st.degraded_invocations, 0);
        assert_eq!(st.invariant_violations, 0);
    }

    #[test]
    fn nan_sensor_demotes_then_hysteresis_reengages() {
        let cfg = SupervisorConfig::default();
        let mut sup = Supervisor::new(heuristic_primary(), cfg);
        let mut hw = clean_hw_sense();
        let mut os = clean_os_sense();
        jitter(&mut hw, &mut os, 0);
        sup.step(&hw, &os);
        // Poison one reading: demoted to the coordinated heuristic.
        let mut bad = hw;
        bad.outputs.p_big = f64::NAN;
        let (hu, ou) = sup.step(&bad, &os);
        assert!(finite_hw(&hu) && finite_os(&ou));
        assert_eq!(sup.mode(), SupervisorMode::Fallback);
        assert_eq!(sup.stats().fallback_entries, 1);
        assert!(sup.stats().nonfinite_repairs >= 1);
        // One clean sample is not enough to re-engage…
        for k in 0..cfg.reengage_after - 1 {
            let mut h = clean_hw_sense();
            let mut o = clean_os_sense();
            jitter(&mut h, &mut o, k as usize + 1);
            sup.step(&h, &o);
            assert_eq!(sup.mode(), SupervisorMode::Fallback, "sample {k}");
        }
        // …but the full streak is.
        let mut h = clean_hw_sense();
        let mut o = clean_os_sense();
        jitter(&mut h, &mut o, 99);
        sup.step(&h, &o);
        assert_eq!(sup.mode(), SupervisorMode::Primary);
        assert_eq!(sup.stats().fallback_exits, 1);
        assert!(sup.stats().degraded_invocations >= cfg.reengage_after as u64);
    }

    #[test]
    fn stuck_sensor_watchdog_fires_after_window() {
        let cfg = SupervisorConfig::default();
        let mut sup = Supervisor::new(heuristic_primary(), cfg);
        let hw = clean_hw_sense();
        let os = clean_os_sense();
        // Bit-identical readings every sample: stuck after `stuck_window`.
        for k in 0..cfg.stuck_window {
            sup.step(&hw, &os);
            if k + 1 < cfg.stuck_window {
                assert_eq!(sup.stats().stuck_detections, 0, "sample {k}");
            }
        }
        assert_eq!(sup.stats().stuck_detections, 3, "one episode per channel");
        assert_eq!(sup.mode(), SupervisorMode::Fallback);
    }

    /// A primary that always reports a numerical failure.
    struct FailingHw;
    impl HwPolicy for FailingHw {
        fn invoke(&mut self, _sense: &HwSense) -> Result<HwInputs> {
            Err(Error::Singular { op: "test" })
        }
        fn name(&self) -> &'static str {
            "failing-hw"
        }
    }

    /// A primary that commands far outside the legal actuation ranges.
    struct WildHw;
    impl HwPolicy for WildHw {
        fn invoke(&mut self, _sense: &HwSense) -> Result<HwInputs> {
            Ok(HwInputs {
                big_cores: 99.0,
                little_cores: -3.0,
                f_big: 10.0,
                f_little: 10.0,
            })
        }
        fn name(&self) -> &'static str {
            "wild-hw"
        }
    }

    #[test]
    fn typed_controller_error_falls_back_same_step() {
        let primary = Controllers::Split {
            hw: Box::new(FailingHw),
            os: Box::new(DecoupledHeuristicOs::new()),
        };
        let mut sup = Supervisor::new(primary, SupervisorConfig::default());
        let mut hw = clean_hw_sense();
        let mut os = clean_os_sense();
        jitter(&mut hw, &mut os, 0);
        let (hu, _) = sup.step(&hw, &os);
        // Served by the fallback heuristic, not the failing primary.
        assert!(finite_hw(&hu));
        assert!((0.2..=2.0).contains(&hu.f_big));
        assert_eq!(sup.mode(), SupervisorMode::Fallback);
        assert_eq!(sup.stats().controller_errors, 1);
    }

    #[test]
    fn wild_actuations_are_clamped_and_windup_resets_fire() {
        let cfg = SupervisorConfig {
            windup_reset_after: 3,
            ..Default::default()
        };
        let primary = Controllers::Split {
            hw: Box::new(WildHw),
            os: Box::new(DecoupledHeuristicOs::new()),
        };
        let mut sup = Supervisor::new(primary, cfg);
        for k in 0..6 {
            let mut hw = clean_hw_sense();
            let mut os = clean_os_sense();
            jitter(&mut hw, &mut os, k);
            let (hu, ou) = sup.step(&hw, &os);
            assert!((1.0..=4.0).contains(&hu.big_cores), "sample {k}");
            assert!((0.2..=2.0).contains(&hu.f_big), "sample {k}");
            assert!((0.2..=1.4).contains(&hu.f_little), "sample {k}");
            assert!((1.0..=4.0).contains(&ou.packing_big), "sample {k}");
        }
        let st = sup.stats();
        assert!(
            st.actuation_clamps >= 6 * 3,
            "clamps {}",
            st.actuation_clamps
        );
        assert!(st.windup_resets >= 2, "windup resets {}", st.windup_resets);
        // Still primary: clamping alone is not fault evidence.
        assert_eq!(sup.mode(), SupervisorMode::Primary);
    }

    #[test]
    fn all_nan_senses_still_yield_legal_actuations() {
        let mut sup = Supervisor::new(heuristic_primary(), SupervisorConfig::default());
        let mut hw = clean_hw_sense();
        let mut os = clean_os_sense();
        hw.outputs.perf = f64::NAN;
        hw.outputs.p_big = f64::INFINITY;
        hw.outputs.p_little = f64::NEG_INFINITY;
        hw.outputs.temp = f64::NAN;
        os.outputs.perf_little = f64::NAN;
        os.outputs.perf_big = f64::NAN;
        os.outputs.spare_diff = f64::NAN;
        os.system = hw.outputs;
        for _ in 0..10 {
            let (hu, ou) = sup.step(&hw, &os);
            assert!(finite_hw(&hu) && finite_os(&ou));
            assert!((1.0..=4.0).contains(&hu.big_cores));
            assert!((0.2..=2.0).contains(&hu.f_big));
            assert!(ou.threads_big <= 8.0);
        }
        assert!(sup.stats().nonfinite_repairs >= 70);
        assert_ne!(sup.mode(), SupervisorMode::Primary);
    }

    /// Demotes a fresh supervisor to Fallback with one NaN sample, then
    /// feeds `n` clean samples. Returns the supervisor for inspection.
    fn demoted_then_clean(cfg: SupervisorConfig, n: u32) -> Supervisor {
        let mut sup = Supervisor::new(heuristic_primary(), cfg);
        let mut hw = clean_hw_sense();
        let mut os = clean_os_sense();
        jitter(&mut hw, &mut os, 0);
        sup.step(&hw, &os);
        let mut bad = hw;
        bad.outputs.p_big = f64::NAN;
        sup.step(&bad, &os);
        assert_eq!(sup.mode(), SupervisorMode::Fallback);
        for k in 0..n {
            let mut h = clean_hw_sense();
            let mut o = clean_os_sense();
            jitter(&mut h, &mut o, k as usize + 1);
            sup.step(&h, &o);
        }
        sup
    }

    #[test]
    fn reengagement_boundary_one_below_threshold_stays_fallback() {
        let cfg = SupervisorConfig::default();
        let sup = demoted_then_clean(cfg, cfg.reengage_after - 1);
        assert_eq!(sup.mode(), SupervisorMode::Fallback);
        assert_eq!(sup.stats().fallback_exits, 0);
    }

    #[test]
    fn reengagement_boundary_exactly_at_threshold_promotes_and_serves_primary() {
        let cfg = SupervisorConfig::default();
        let mut sup = demoted_then_clean(cfg, cfg.reengage_after - 1);
        // The Nth clean sample promotes *before* the invocation is routed,
        // so Primary serves it: the returned actuation must match a bare
        // primary that was reset at the promotion (stale-state discard).
        let mut h = clean_hw_sense();
        let mut o = clean_os_sense();
        jitter(&mut h, &mut o, 50);
        let (hu, ou) = sup.step(&h, &o);
        assert_eq!(sup.mode(), SupervisorMode::Primary);
        assert_eq!(sup.stats().fallback_exits, 1);
        let mut bare_hw = DecoupledHeuristicHw::new();
        let mut bare_os = DecoupledHeuristicOs::new();
        assert_eq!(hu, bare_hw.invoke(&h).unwrap());
        assert_eq!(ou, bare_os.invoke(&o).unwrap());
        // The promoting sample itself was served by Primary, so it does
        // not count as degraded.
        assert_eq!(
            sup.stats().degraded_invocations,
            u64::from(cfg.reengage_after)
        );
    }

    #[test]
    fn reengagement_boundary_one_past_threshold_does_not_flap() {
        let cfg = SupervisorConfig::default();
        let mut sup = demoted_then_clean(cfg, cfg.reengage_after);
        assert_eq!(sup.mode(), SupervisorMode::Primary);
        // Continued clean samples: mode stays Primary, no extra
        // entries/exits — a single demotion episode, no flapping.
        for k in 0..2 * cfg.reengage_after {
            let mut h = clean_hw_sense();
            let mut o = clean_os_sense();
            jitter(&mut h, &mut o, 60 + k as usize);
            sup.step(&h, &o);
            assert_eq!(sup.mode(), SupervisorMode::Primary, "sample {k}");
        }
        assert_eq!(sup.stats().fallback_entries, 1);
        assert_eq!(sup.stats().fallback_exits, 1);
        assert_eq!(sup.stats().invariant_violations, 0);
    }

    #[test]
    fn dirty_sample_mid_streak_restarts_the_hysteresis_count() {
        let cfg = SupervisorConfig::default();
        let mut sup = demoted_then_clean(cfg, cfg.reengage_after - 1);
        // A dirty sample resets the streak: N−1 more clean samples are
        // again not enough…
        let mut bad = clean_hw_sense();
        bad.outputs.temp = f64::NAN;
        let os = clean_os_sense();
        sup.step(&bad, &os);
        assert_eq!(sup.mode(), SupervisorMode::Fallback);
        for k in 0..cfg.reengage_after - 1 {
            let mut h = clean_hw_sense();
            let mut o = clean_os_sense();
            jitter(&mut h, &mut o, 70 + k as usize);
            sup.step(&h, &o);
            assert_eq!(sup.mode(), SupervisorMode::Fallback, "sample {k}");
        }
        // …but the full streak is.
        let mut h = clean_hw_sense();
        let mut o = clean_os_sense();
        jitter(&mut h, &mut o, 99);
        sup.step(&h, &o);
        assert_eq!(sup.mode(), SupervisorMode::Primary);
        assert_eq!(sup.stats().fallback_entries, 1, "one episode, no flap");
        assert_eq!(sup.stats().fallback_exits, 1);
    }

    #[test]
    fn sustained_dirt_escalates_to_safe_then_recovers_through_fallback() {
        // Correlated faults keep every sample dirty: after
        // `escalate_after` dirty samples in Fallback the supervisor parks
        // in Safe; a clean streak then re-engages one level at a time.
        let cfg = SupervisorConfig {
            escalate_after: 5,
            ..Default::default()
        };
        let mut sup = Supervisor::new(heuristic_primary(), cfg);
        let mut bad = clean_hw_sense();
        bad.outputs.p_big = f64::NAN;
        let os = clean_os_sense();
        // Sample 1 demotes to Fallback (dirty_streak 1); escalation at
        // dirty_streak == escalate_after.
        for k in 0..cfg.escalate_after {
            sup.step(&bad, &os);
            if k + 1 < cfg.escalate_after {
                assert_eq!(sup.mode(), SupervisorMode::Fallback, "sample {k}");
            }
        }
        assert_eq!(sup.mode(), SupervisorMode::Safe);
        assert_eq!(sup.stats().safe_entries, 1);
        // Safe still serves legal actuations.
        let (hu, ou) = sup.step(&bad, &os);
        assert!(finite_hw(&hu) && finite_os(&ou));
        assert!((1.0..=4.0).contains(&hu.big_cores));
        // Clean telemetry climbs back: Safe → Fallback → Primary.
        let mut k = 0usize;
        while sup.mode() != SupervisorMode::Primary {
            let mut h = clean_hw_sense();
            let mut o = clean_os_sense();
            jitter(&mut h, &mut o, k);
            sup.step(&h, &o);
            k += 1;
            assert!(k <= 3 * cfg.reengage_after as usize, "no re-engagement");
        }
        assert_eq!(sup.stats().fallback_exits, 1);
        assert_eq!(sup.stats().invariant_violations, 0);
    }

    #[test]
    fn validate_rejects_flapping_prone_configs() {
        assert!(SupervisorConfig::default().validate().is_ok());
        let bad = |cfg: SupervisorConfig| matches!(cfg.validate(), Err(Error::NoSolution { op, .. }) if op == "supervisor_config");
        assert!(bad(SupervisorConfig {
            reengage_after: 1,
            ..Default::default()
        }));
        assert!(bad(SupervisorConfig {
            stuck_window: 0,
            ..Default::default()
        }));
        assert!(bad(SupervisorConfig {
            windup_reset_after: 0,
            ..Default::default()
        }));
        assert!(bad(SupervisorConfig {
            escalate_after: 1,
            ..Default::default()
        }));
    }

    #[test]
    fn shed_policy_validation_rejects_degenerate_thresholds() {
        assert!(ShedPolicy::default().validate().is_ok());
        let bad = |p: ShedPolicy| matches!(p.validate(), Err(Error::NoSolution { op, .. }) if op == "shed_policy");
        assert!(bad(ShedPolicy {
            engage_ratio: f64::NAN,
            ..Default::default()
        }));
        assert!(bad(ShedPolicy {
            engage_ratio: -1.0,
            ..Default::default()
        }));
        assert!(bad(ShedPolicy {
            release_ratio: 1.5, // >= engage_ratio: no hysteresis band
            ..Default::default()
        }));
        assert!(bad(ShedPolicy {
            backlog_hi: 1.5,
            ..Default::default()
        }));
        assert!(bad(ShedPolicy {
            shed_step: 0.0,
            ..Default::default()
        }));
        assert!(bad(ShedPolicy {
            shed_max: 1.0,
            ..Default::default()
        }));
        assert!(bad(ShedPolicy {
            overload_after: 1,
            ..Default::default()
        }));
        // A bad shed policy fails the whole supervisor config.
        let cfg = SupervisorConfig {
            shed: ShedPolicy {
                shed_step: f64::INFINITY,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(matches!(cfg.validate(), Err(Error::NoSolution { op, .. }) if op == "shed_policy"));
    }

    /// An SLO observation violating the default 1 s p99 bound.
    fn violating_slo() -> SloSense {
        SloSense {
            active: true,
            p95_s: 1.1,
            p99_s: 1.6,
            backlog_frac: 0.4,
            drop_frac: 0.0,
        }
    }

    #[test]
    fn sustained_overload_engages_shedding_with_hysteresis() {
        let cfg = SupervisorConfig::default();
        let mut sup = Supervisor::new(heuristic_primary(), cfg);
        // Jitter every sensor channel each sample so the stuck-sensor
        // watchdog stays quiet: this test is about overload, not faults.
        let mut tick = 0usize;
        let mut senses = |slo: SloSense| {
            let mut h = clean_hw_sense();
            let mut o = clean_os_sense();
            jitter(&mut h, &mut o, tick);
            tick += 1;
            h.slo = slo;
            (h, o)
        };
        // Overloaded samples below the streak threshold: no shedding yet.
        for k in 0..cfg.shed.overload_after - 1 {
            let (h, o) = senses(violating_slo());
            sup.step(&h, &o);
            assert_eq!(sup.shed_frac(), 0.0, "sample {k}");
        }
        // The streak completes: shedding engages and ramps.
        let mut shed_prev = 0.0;
        for k in 0..5 {
            let (h, o) = senses(violating_slo());
            sup.step(&h, &o);
            assert!(sup.shed_frac() >= shed_prev, "sample {k} must not decay");
            shed_prev = sup.shed_frac();
        }
        assert!(shed_prev > 0.0);
        assert!(shed_prev <= cfg.shed.shed_max);
        assert_eq!(sup.stats().shed_engagements, 1);
        // In the hysteresis band (between release and engage): hold.
        let mut band = violating_slo();
        band.p99_s = 0.85; // between 0.7 and 1.0
        band.backlog_frac = 0.1;
        let (h, o) = senses(band);
        sup.step(&h, &o);
        assert_eq!(sup.shed_frac(), shed_prev, "hysteresis band holds");
        // Clear recovery: the shed fraction decays back to zero.
        for _ in 0..12 {
            let mut calm = violating_slo();
            calm.p99_s = 0.2;
            calm.backlog_frac = 0.0;
            let (h, o) = senses(calm);
            sup.step(&h, &o);
        }
        assert_eq!(sup.shed_frac(), 0.0);
        assert_eq!(sup.stats().shed_engagements, 1, "one episode");
        assert_eq!(sup.stats().invariant_violations, 0);
        // Overload is not fault evidence: the primary stayed in charge.
        assert_eq!(sup.mode(), SupervisorMode::Primary);
        assert_eq!(sup.stats().fallback_entries, 0);
    }

    #[test]
    fn inactive_slo_keeps_shedding_at_exactly_zero() {
        let mut sup = Supervisor::new(heuristic_primary(), SupervisorConfig::default());
        for k in 0..20 {
            let mut h = clean_hw_sense();
            let mut o = clean_os_sense();
            jitter(&mut h, &mut o, k);
            // Poisoned latency readings on an *inactive* observation must
            // be ignored (batch runs carry no serving layer).
            h.slo.p99_s = 99.0;
            h.slo.backlog_frac = 1.0;
            sup.step(&h, &o);
            assert_eq!(sup.shed_frac(), 0.0, "sample {k}");
        }
        assert_eq!(sup.stats().shed_engagements, 0);
    }

    #[test]
    fn safe_mode_pins_admission_at_shed_max() {
        let cfg = SupervisorConfig {
            escalate_after: 3,
            ..Default::default()
        };
        let mut sup = Supervisor::new(heuristic_primary(), cfg);
        let mut bad = clean_hw_sense();
        bad.outputs.p_big = f64::NAN;
        let os = clean_os_sense();
        while sup.mode() != SupervisorMode::Safe {
            sup.step(&bad, &os);
        }
        assert_eq!(sup.shed_frac(), cfg.shed.shed_max);
        assert_eq!(sup.stats().invariant_violations, 0);
    }

    #[test]
    fn shedder_state_survives_save_restore() {
        let cfg = SupervisorConfig::default();
        let mut sup = Supervisor::new(heuristic_primary(), cfg);
        let os = clean_os_sense();
        for k in 0..cfg.shed.overload_after + 2 {
            let mut h = clean_hw_sense();
            h.slo = violating_slo();
            h.outputs.p_big += 1e-9 * (k as f64 + 1.0);
            sup.step(&h, &os);
        }
        assert!(sup.shed_frac() > 0.0);
        let snap = sup.save_state();
        let mut restored = Supervisor::new(heuristic_primary(), cfg);
        restored.restore_state(&snap).unwrap();
        assert_eq!(restored.shed_frac().to_bits(), sup.shed_frac().to_bits());
        for k in 0..6 {
            let mut h = clean_hw_sense();
            h.slo = violating_slo();
            h.outputs.p_big += 1e-9 * (k as f64 + 50.0);
            let a = sup.step(&h, &os);
            let b = restored.step(&h, &os);
            assert_eq!(a, b, "sample {k}");
            assert_eq!(
                sup.shed_frac().to_bits(),
                restored.shed_frac().to_bits(),
                "sample {k}"
            );
        }
    }

    #[test]
    fn staged_swap_window_is_transparent_and_checked() {
        // request_swap opens the crash-vulnerable window; steps inside it
        // and the eventual commit are bit-transparent vs an unswapped
        // twin, and the protocol records no violations.
        let cfg = SupervisorConfig::default();
        let mut sup = Supervisor::new(heuristic_primary(), cfg);
        let mut twin = Supervisor::new(heuristic_primary(), cfg);
        for k in 0..4 {
            let mut h = clean_hw_sense();
            let mut o = clean_os_sense();
            jitter(&mut h, &mut o, k);
            assert_eq!(sup.step(&h, &o), twin.step(&h, &o));
        }
        sup.request_swap();
        assert!(sup.swap_pending());
        let mut h = clean_hw_sense();
        let mut o = clean_os_sense();
        jitter(&mut h, &mut o, 4);
        assert_eq!(sup.step(&h, &o), twin.step(&h, &o), "pending window");
        assert!(sup.swap_primary(heuristic_primary()), "commit is bumpless");
        assert!(!sup.swap_pending());
        for k in 5..15 {
            let mut h = clean_hw_sense();
            let mut o = clean_os_sense();
            jitter(&mut h, &mut o, k);
            assert_eq!(sup.step(&h, &o), twin.step(&h, &o), "sample {k}");
        }
        assert_eq!(sup.violations(), 0, "{:?}", sup.first_violation());
    }

    #[test]
    fn save_restore_roundtrips_supervisor_bit_for_bit() {
        let cfg = SupervisorConfig::default();
        // Capture mid-episode: demoted, partway through a clean streak.
        let mut sup = demoted_then_clean(cfg, 2);
        let snap = sup.save_state();
        assert_eq!(snap.automaton.level, SupervisorMode::Fallback);
        assert_eq!(snap.automaton.clean_streak, 2);
        // "Restart the daemon": a fresh supervisor around fresh
        // controllers, restored from the snapshot.
        let mut restored = Supervisor::new(heuristic_primary(), cfg);
        restored.restore_state(&snap).unwrap();
        for k in 0..3 * cfg.reengage_after {
            let mut h = clean_hw_sense();
            let mut o = clean_os_sense();
            jitter(&mut h, &mut o, 10 + k as usize);
            let (ah, ao) = sup.step(&h, &o);
            let (bh, bo) = restored.step(&h, &o);
            assert_eq!(ah, bh, "sample {k}");
            assert_eq!(ao, bo, "sample {k}");
            assert_eq!(sup.mode(), restored.mode(), "sample {k}");
        }
        assert_eq!(sup.stats(), restored.stats());
    }

    #[test]
    fn same_scheme_swap_is_bumpless_and_transparent() {
        // A mid-run swap to a same-scheme replacement must carry the
        // primary state across: the supervised trace stays bit-identical
        // to an unswapped twin.
        let cfg = SupervisorConfig::default();
        let mut sup = Supervisor::new(heuristic_primary(), cfg);
        let mut twin = Supervisor::new(heuristic_primary(), cfg);
        for k in 0..5 {
            let mut h = clean_hw_sense();
            let mut o = clean_os_sense();
            jitter(&mut h, &mut o, k);
            assert_eq!(sup.step(&h, &o), twin.step(&h, &o));
        }
        let bumpless = sup.swap_primary(heuristic_primary());
        assert!(bumpless, "same-scheme swap must be bumpless");
        for k in 5..25 {
            let mut h = clean_hw_sense();
            let mut o = clean_os_sense();
            jitter(&mut h, &mut o, k);
            assert_eq!(sup.step(&h, &o), twin.step(&h, &o), "sample {k}");
        }
        assert_eq!(sup.mode(), SupervisorMode::Primary);
        assert_eq!(sup.stats(), twin.stats());
    }

    #[test]
    fn mismatched_swap_resets_replacement_and_keeps_serving() {
        // Swapping in controllers of a different scheme cannot be
        // bumpless; the replacement starts from reset but service
        // continues with finite in-range actuations and no mode change.
        let cfg = SupervisorConfig::default();
        let mut sup = Supervisor::new(heuristic_primary(), cfg);
        for k in 0..5 {
            let mut h = clean_hw_sense();
            let mut o = clean_os_sense();
            jitter(&mut h, &mut o, k);
            sup.step(&h, &o);
        }
        let next = Controllers::Split {
            hw: Box::new(CoordinatedHeuristicHw::new()),
            os: Box::new(CoordinatedHeuristicOs::new()),
        };
        let bumpless = sup.swap_primary(next);
        assert!(!bumpless, "cross-scheme swap cannot transfer state");
        assert_eq!(sup.mode(), SupervisorMode::Primary);
        // The replacement serves from reset, matching a fresh instance.
        let mut bare_hw = CoordinatedHeuristicHw::new();
        let mut bare_os = CoordinatedHeuristicOs::new();
        for k in 5..15 {
            let mut h = clean_hw_sense();
            let mut o = clean_os_sense();
            jitter(&mut h, &mut o, k);
            let (hu, ou) = sup.step(&h, &o);
            assert!(finite_hw(&hu) && finite_os(&ou), "sample {k}");
            assert_eq!(hu, bare_hw.invoke(&h).unwrap(), "sample {k}");
            assert_eq!(ou, bare_os.invoke(&o).unwrap(), "sample {k}");
        }
        assert_eq!(sup.stats().fallback_entries, 0);
        assert_eq!(sup.stats().invariant_violations, 0);
    }
}
