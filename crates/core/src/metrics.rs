//! Execution metrics and time-series traces — the raw material of every
//! figure in the paper's evaluation.

use serde::{Deserialize, Serialize};
use yukta_board::{ActuationAudit, FaultEvent, FaultStats};

use crate::supervisor::SupervisorStats;

/// Energy/delay metrics of one workload execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Cluster energy consumed (J).
    pub energy_joules: f64,
    /// Execution time (s).
    pub delay_seconds: f64,
    /// Whether the workload ran to completion (false = timeout).
    pub completed: bool,
}

impl Metrics {
    /// The paper's primary figure of merit: Energy × Delay (J·s).
    pub fn exd(&self) -> f64 {
        self.energy_joules * self.delay_seconds
    }
}

/// Wall-clock controller compute cost of one run: how much *real* time the
/// controller stack spent inside `invoke` across the run (the simulated
/// trace only carries simulated time). This is the control-law jitter
/// budget a production deployment cares about — the paper's prototype ran
/// as privileged processes every 500 ms, so `max_ns` must stay far below
/// that period.
///
/// Wall-clock times are inherently nondeterministic, so this struct is
/// deliberately **excluded** from [`Report::bit_identical`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ComputeStats {
    /// Controller invocations measured.
    pub invocations: u64,
    /// Total wall-clock time inside `invoke` (ns).
    pub total_ns: u64,
    /// Worst single invocation (ns).
    pub max_ns: u64,
}

impl ComputeStats {
    /// Mean wall-clock time per invocation (ns); 0 when nothing ran.
    pub fn mean_ns(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.invocations as f64
        }
    }

    /// Total wall-clock compute time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }
}

/// One sampled point of an execution trace (taken at each controller
/// invocation, every 500 ms).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Simulated time (s).
    pub time: f64,
    /// Big-cluster power from the sensor (W).
    pub p_big: f64,
    /// Little-cluster power from the sensor (W).
    pub p_little: f64,
    /// Hotspot temperature (°C).
    pub temp: f64,
    /// Total BIPS over the last controller period.
    pub bips: f64,
    /// Big-cluster BIPS over the last period.
    pub bips_big: f64,
    /// Little-cluster BIPS over the last period.
    pub bips_little: f64,
    /// Effective big-cluster frequency (GHz).
    pub f_big: f64,
    /// Effective little-cluster frequency (GHz).
    pub f_little: f64,
    /// Powered big cores.
    pub big_cores: usize,
    /// Powered little cores.
    pub little_cores: usize,
    /// Threads currently assigned to the big cluster.
    pub threads_big: usize,
    /// Active threads in the workload.
    pub active_threads: usize,
}

/// A full execution trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Samples in time order.
    pub samples: Vec<TraceSample>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, s: TraceSample) {
        self.samples.push(s);
    }

    /// Mean of an arbitrary per-sample quantity over the trace.
    pub fn mean_of(&self, f: impl Fn(&TraceSample) -> f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(&f).sum::<f64>() / self.samples.len() as f64
    }

    /// Counts threshold crossings (rising edges) of a quantity — used to
    /// quantify the power oscillations of Figure 10.
    pub fn crossings_above(&self, f: impl Fn(&TraceSample) -> f64, threshold: f64) -> usize {
        let mut count = 0;
        let mut above = false;
        for s in &self.samples {
            let v = f(s);
            if v > threshold && !above {
                count += 1;
                above = true;
            } else if v <= threshold {
                above = false;
            }
        }
        count
    }
}

/// What the fault injector did during one run (attached to supervised
/// executions that carried a fault plan).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Fault-plan RNG seed.
    pub seed: u64,
    /// Fault-plan severity knob in `[0, 1]`.
    pub severity: f64,
    /// Per-kind injection counters.
    pub stats: FaultStats,
    /// Every injected fault in time order.
    pub trace: Vec<FaultEvent>,
}

/// Request-serving outcome of one run (attached when the run carried a
/// [`crate::runtime::ServingSpec`]). All fields are deterministic and part
/// of [`Report::bit_identical`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SloReport {
    /// Requests offered by the open-loop arrival process.
    pub offered: u64,
    /// Requests admitted past shedding and the backlog cap.
    pub admitted: u64,
    /// Requests dropped by admission control (load shedding).
    pub shed: u64,
    /// Requests rejected at the full backlog.
    pub rejected: u64,
    /// Admitted requests dropped after exceeding the queue timeout.
    pub timed_out: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Run-lifetime p95 latency (s); 0 when nothing completed.
    pub p95_s: f64,
    /// Run-lifetime p99 latency (s); 0 when nothing completed.
    pub p99_s: f64,
    /// Controller invocations whose windowed p99 exceeded the SLO bound,
    /// as a fraction of serving invocations.
    pub violation_frac: f64,
    /// Highest admission shed fraction commanded during the run.
    pub max_shed_frac: f64,
}

impl SloReport {
    /// All requests dropped for any reason (shed + rejected + timed out).
    pub fn dropped(&self) -> u64 {
        self.shed + self.rejected + self.timed_out
    }

    /// Fraction of offered requests that were served to completion.
    pub fn goodput_frac(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.completed as f64 / self.offered as f64
        }
    }
}

/// The outcome of running one scheme on one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Workload name.
    pub workload: String,
    /// Scheme label.
    pub scheme: String,
    /// Aggregate metrics.
    pub metrics: Metrics,
    /// Full 500 ms-resolution trace.
    pub trace: Trace,
    /// Supervisor counters (`None` for unsupervised runs).
    pub supervisor: Option<SupervisorStats>,
    /// Fault-injection record (`None` when no faults were planned).
    pub faults: Option<FaultReport>,
    /// Request-serving outcome (`None` for batch runs).
    #[serde(default)]
    pub slo: Option<SloReport>,
    /// Actuation-protocol audit from the board boundary: single writer
    /// per step window, TMU strictly a capper. Deterministic, so it *is*
    /// part of [`Report::bit_identical`].
    #[serde(default)]
    pub actuation: ActuationAudit,
    /// Wall-clock controller compute cost (excluded from
    /// [`Report::bit_identical`] — real time is nondeterministic).
    pub compute: ComputeStats,
}

impl Report {
    /// Whether two reports are *bit-identical*: every `f64` compared via
    /// [`f64::to_bits`] (so `-0.0 ≠ 0.0` and NaN payloads matter), all
    /// discrete fields via equality. This is the crash-recovery
    /// acceptance predicate: a recovered run must reproduce the
    /// uninterrupted run's report exactly, not approximately.
    ///
    /// [`Report::compute`] is deliberately not compared: it carries
    /// wall-clock (real-time) measurements, which legitimately differ
    /// between two otherwise identical runs.
    pub fn bit_identical(&self, other: &Report) -> bool {
        let metrics_ok = self.metrics.energy_joules.to_bits()
            == other.metrics.energy_joules.to_bits()
            && self.metrics.delay_seconds.to_bits() == other.metrics.delay_seconds.to_bits()
            && self.metrics.completed == other.metrics.completed;
        let trace_ok = self.trace.samples.len() == other.trace.samples.len()
            && self
                .trace
                .samples
                .iter()
                .zip(&other.trace.samples)
                .all(|(a, b)| {
                    a.time.to_bits() == b.time.to_bits()
                        && a.p_big.to_bits() == b.p_big.to_bits()
                        && a.p_little.to_bits() == b.p_little.to_bits()
                        && a.temp.to_bits() == b.temp.to_bits()
                        && a.bips.to_bits() == b.bips.to_bits()
                        && a.bips_big.to_bits() == b.bips_big.to_bits()
                        && a.bips_little.to_bits() == b.bips_little.to_bits()
                        && a.f_big.to_bits() == b.f_big.to_bits()
                        && a.f_little.to_bits() == b.f_little.to_bits()
                        && a.big_cores == b.big_cores
                        && a.little_cores == b.little_cores
                        && a.threads_big == b.threads_big
                        && a.active_threads == b.active_threads
                });
        let faults_ok = match (&self.faults, &other.faults) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                a.seed == b.seed
                    && a.severity.to_bits() == b.severity.to_bits()
                    && a.stats == b.stats
                    && a.trace.len() == b.trace.len()
                    && a.trace.iter().zip(&b.trace).all(|(x, y)| {
                        x.time.to_bits() == y.time.to_bits()
                            && x.kind == y.kind
                            && x.channel == y.channel
                            && x.value.to_bits() == y.value.to_bits()
                    })
            }
            _ => false,
        };
        let slo_ok = match (&self.slo, &other.slo) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                a.offered == b.offered
                    && a.admitted == b.admitted
                    && a.shed == b.shed
                    && a.rejected == b.rejected
                    && a.timed_out == b.timed_out
                    && a.completed == b.completed
                    && a.p95_s.to_bits() == b.p95_s.to_bits()
                    && a.p99_s.to_bits() == b.p99_s.to_bits()
                    && a.violation_frac.to_bits() == b.violation_frac.to_bits()
                    && a.max_shed_frac.to_bits() == b.max_shed_frac.to_bits()
            }
            _ => false,
        };
        metrics_ok
            && trace_ok
            && faults_ok
            && slo_ok
            && self.supervisor == other.supervisor
            && self.actuation == other.actuation
            && self.workload == other.workload
            && self.scheme == other.scheme
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, p: f64) -> TraceSample {
        TraceSample {
            time: t,
            p_big: p,
            p_little: 0.0,
            temp: 50.0,
            bips: 1.0,
            bips_big: 0.8,
            bips_little: 0.2,
            f_big: 1.0,
            f_little: 1.0,
            big_cores: 4,
            little_cores: 4,
            threads_big: 4,
            active_threads: 8,
        }
    }

    #[test]
    fn exd_is_product() {
        let m = Metrics {
            energy_joules: 100.0,
            delay_seconds: 20.0,
            completed: true,
        };
        assert_eq!(m.exd(), 2000.0);
    }

    #[test]
    fn trace_mean() {
        let mut t = Trace::new();
        t.push(sample(0.0, 1.0));
        t.push(sample(0.5, 3.0));
        assert_eq!(t.mean_of(|s| s.p_big), 2.0);
        assert_eq!(Trace::new().mean_of(|s| s.p_big), 0.0);
    }

    #[test]
    fn crossings_count_rising_edges() {
        let mut t = Trace::new();
        for &p in &[1.0, 4.0, 4.5, 2.0, 4.2, 1.0, 3.9, 4.1] {
            t.push(sample(0.0, p));
        }
        assert_eq!(t.crossings_above(|s| s.p_big, 4.0), 3);
        assert_eq!(t.crossings_above(|s| s.p_big, 10.0), 0);
    }
}
