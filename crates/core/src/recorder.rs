//! Flight recorder: an append-only journal of everything the runtime did.
//!
//! Every controller invocation appends one [`JournalRecord`] capturing the
//! full sensor vector handed to the controllers, the actuation they
//! produced, the supervisor's mode decision, and any fault events injected
//! during that period. Together with the periodic checkpoints taken by
//! [`crate::runtime::Experiment::run_recoverable`], the journal makes a
//! crashed run resumable: restore the latest checkpoint, replay the journal
//! suffix, and continue — bit-identically to a run that never crashed.
//!
//! The journal doubles as a standing determinism proof: feeding its recorded
//! senses to a freshly instantiated controller stack via [`replay_with`]
//! must reproduce the recorded actuation stream exactly
//! (`f64::to_bits`-equal), or the run was not deterministic.
//!
//! Serialization is a hand-rolled little-endian binary format (the vendored
//! `serde` is a no-op stub); see [`Journal::to_bytes`] for the layout.

use yukta_board::{FaultChannel, FaultEvent, FaultKind};
use yukta_linalg::{Error, Result};

use crate::controllers::{HwSense, OsSense};
use crate::signals::{HwInputs, HwOutputs, Limits, OsInputs, OsOutputs, SloSense};
use crate::supervisor::SupervisorMode;

/// Magic number opening every serialized journal (`"YKTJ"` big-endian).
pub const JOURNAL_MAGIC: u32 = 0x594B_544A;
/// Current journal format version. Version 2 added the request-serving
/// fields: one [`SloSense`] per sense vector and `latency_slo_s` in
/// [`Limits`]. Version-1 journals are rejected rather than migrated — the
/// journal is a per-run crash-recovery artifact, not an archival format.
pub const JOURNAL_VERSION: u32 = 2;

/// Everything the runtime knew and decided at one controller invocation.
#[derive(Debug, Clone)]
pub struct JournalRecord {
    /// Invocation index (0-based, counted in completed invocations).
    pub step: u64,
    /// Simulated time at the sense instant (s).
    pub time: f64,
    /// The hardware-layer sense vector handed to the controller.
    pub hw_sense: HwSense,
    /// The software-layer sense vector handed to the controller.
    pub os_sense: OsSense,
    /// The hardware actuation the controller produced.
    pub hw_u: HwInputs,
    /// The software actuation the controller produced.
    pub os_u: OsInputs,
    /// Supervisor mode in force for this invocation (`None` for raw,
    /// unsupervised engines).
    pub mode: Option<SupervisorMode>,
    /// Fault events injected during this controller period, in order.
    pub fault_events: Vec<FaultEvent>,
}

impl JournalRecord {
    /// Whether two records are bit-identical: every `f64` compared via
    /// [`f64::to_bits`], discrete fields via equality.
    pub fn bit_identical(&self, other: &JournalRecord) -> bool {
        fn eq(a: f64, b: f64) -> bool {
            a.to_bits() == b.to_bits()
        }
        fn hw_out(a: &HwOutputs, b: &HwOutputs) -> bool {
            eq(a.perf, b.perf)
                && eq(a.p_big, b.p_big)
                && eq(a.p_little, b.p_little)
                && eq(a.temp, b.temp)
        }
        fn hw_in(a: &HwInputs, b: &HwInputs) -> bool {
            eq(a.big_cores, b.big_cores)
                && eq(a.little_cores, b.little_cores)
                && eq(a.f_big, b.f_big)
                && eq(a.f_little, b.f_little)
        }
        fn os_in(a: &OsInputs, b: &OsInputs) -> bool {
            eq(a.threads_big, b.threads_big)
                && eq(a.packing_big, b.packing_big)
                && eq(a.packing_little, b.packing_little)
        }
        fn os_out(a: &OsOutputs, b: &OsOutputs) -> bool {
            eq(a.perf_little, b.perf_little)
                && eq(a.perf_big, b.perf_big)
                && eq(a.spare_diff, b.spare_diff)
        }
        fn lim(a: &Limits, b: &Limits) -> bool {
            eq(a.p_big_max, b.p_big_max)
                && eq(a.p_little_max, b.p_little_max)
                && eq(a.temp_max, b.temp_max)
                && eq(a.latency_slo_s, b.latency_slo_s)
        }
        fn slo(a: &SloSense, b: &SloSense) -> bool {
            a.active == b.active
                && eq(a.p95_s, b.p95_s)
                && eq(a.p99_s, b.p99_s)
                && eq(a.backlog_frac, b.backlog_frac)
                && eq(a.drop_frac, b.drop_frac)
        }
        self.step == other.step
            && eq(self.time, other.time)
            && hw_out(&self.hw_sense.outputs, &other.hw_sense.outputs)
            && os_in(&self.hw_sense.ext, &other.hw_sense.ext)
            && hw_in(&self.hw_sense.current, &other.hw_sense.current)
            && self.hw_sense.active_threads == other.hw_sense.active_threads
            && slo(&self.hw_sense.slo, &other.hw_sense.slo)
            && lim(&self.hw_sense.limits, &other.hw_sense.limits)
            && os_out(&self.os_sense.outputs, &other.os_sense.outputs)
            && hw_in(&self.os_sense.ext, &other.os_sense.ext)
            && os_in(&self.os_sense.current, &other.os_sense.current)
            && self.os_sense.active_threads == other.os_sense.active_threads
            && hw_out(&self.os_sense.system, &other.os_sense.system)
            && slo(&self.os_sense.slo, &other.os_sense.slo)
            && lim(&self.os_sense.limits, &other.os_sense.limits)
            && hw_in(&self.hw_u, &other.hw_u)
            && os_in(&self.os_u, &other.os_u)
            && self.mode == other.mode
            && self.fault_events.len() == other.fault_events.len()
            && self
                .fault_events
                .iter()
                .zip(&other.fault_events)
                .all(|(x, y)| {
                    eq(x.time, y.time)
                        && x.kind == y.kind
                        && x.channel == y.channel
                        && eq(x.value, y.value)
                })
    }
}

/// The append-only flight-recorder journal of one run.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    records: Vec<JournalRecord>,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Number of recorded invocations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record at invocation index `i`, if recorded.
    pub fn get(&self, i: usize) -> Option<&JournalRecord> {
        self.records.get(i)
    }

    /// All records in invocation order.
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// Appends one invocation record.
    pub fn push(&mut self, record: JournalRecord) {
        self.records.push(record);
    }

    /// Serializes the journal to the compact little-endian binary format.
    ///
    /// Layout: header `magic:u32, version:u32, count:u64`, then per record
    /// `step:u64, time:f64`, the hardware sense (15 `f64` in Table II order
    /// — outputs, ext, current, limits — plus `active_threads:u64` and the
    /// SLO sense `active:u8` + 4 `f64`), the software sense (18 `f64` —
    /// outputs, ext, current, system, limits — plus `active_threads:u64`
    /// and the SLO sense), the actuations (4 + 3 `f64`), the mode
    /// byte (0 = raw, 1 = primary, 2 = fallback, 3 = safe), and the fault
    /// events (`count:u32`, then per event `time:f64, kind:u8,
    /// at_step:u64, channel:u8, value:f64`; `at_step` is 0 for non-crash
    /// kinds). All `f64`s are stored as raw IEEE-754 bits, so a decode is
    /// bit-exact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.records.len() * 320);
        put_u32(&mut out, JOURNAL_MAGIC);
        put_u32(&mut out, JOURNAL_VERSION);
        put_u64(&mut out, self.records.len() as u64);
        for r in &self.records {
            put_u64(&mut out, r.step);
            put_f64(&mut out, r.time);
            for v in r.hw_sense.outputs.to_vec() {
                put_f64(&mut out, v);
            }
            for v in r.hw_sense.ext.to_vec() {
                put_f64(&mut out, v);
            }
            for v in r.hw_sense.current.to_vec() {
                put_f64(&mut out, v);
            }
            put_limits(&mut out, &r.hw_sense.limits);
            put_u64(&mut out, r.hw_sense.active_threads as u64);
            put_slo(&mut out, &r.hw_sense.slo);
            for v in r.os_sense.outputs.to_vec() {
                put_f64(&mut out, v);
            }
            for v in r.os_sense.ext.to_vec() {
                put_f64(&mut out, v);
            }
            for v in r.os_sense.current.to_vec() {
                put_f64(&mut out, v);
            }
            for v in r.os_sense.system.to_vec() {
                put_f64(&mut out, v);
            }
            put_limits(&mut out, &r.os_sense.limits);
            put_u64(&mut out, r.os_sense.active_threads as u64);
            put_slo(&mut out, &r.os_sense.slo);
            for v in r.hw_u.to_vec() {
                put_f64(&mut out, v);
            }
            for v in r.os_u.to_vec() {
                put_f64(&mut out, v);
            }
            out.push(mode_code(r.mode));
            put_u32(&mut out, r.fault_events.len() as u32);
            for e in &r.fault_events {
                put_f64(&mut out, e.time);
                let (kind, at_step) = kind_code(e.kind);
                out.push(kind);
                put_u64(&mut out, at_step);
                out.push(channel_code(e.channel));
                put_f64(&mut out, e.value);
            }
        }
        out
    }

    /// Decodes a journal serialized by [`Journal::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`Error::NoSolution`] with `op = "journal_decode"` on a bad magic
    /// number, unsupported version, truncated buffer, trailing garbage, or
    /// invalid mode/kind/channel code.
    pub fn from_bytes(bytes: &[u8]) -> Result<Journal> {
        let mut c = Cursor { buf: bytes, pos: 0 };
        if c.u32()? != JOURNAL_MAGIC {
            return Err(decode_err("bad magic number"));
        }
        if c.u32()? != JOURNAL_VERSION {
            return Err(decode_err("unsupported journal version"));
        }
        let count = c.u64()?;
        let mut records = Vec::new();
        for _ in 0..count {
            let step = c.u64()?;
            let time = c.f64()?;
            let hw_outputs = HwOutputs {
                perf: c.f64()?,
                p_big: c.f64()?,
                p_little: c.f64()?,
                temp: c.f64()?,
            };
            let hw_ext = c.os_inputs()?;
            let hw_current = c.hw_inputs()?;
            let hw_limits = c.limits()?;
            let hw_threads = c.u64()? as usize;
            let hw_slo = c.slo()?;
            let os_outputs = OsOutputs {
                perf_little: c.f64()?,
                perf_big: c.f64()?,
                spare_diff: c.f64()?,
            };
            let os_ext = c.hw_inputs()?;
            let os_current = c.os_inputs()?;
            let os_system = HwOutputs {
                perf: c.f64()?,
                p_big: c.f64()?,
                p_little: c.f64()?,
                temp: c.f64()?,
            };
            let os_limits = c.limits()?;
            let os_threads = c.u64()? as usize;
            let os_slo = c.slo()?;
            let hw_u = c.hw_inputs()?;
            let os_u = c.os_inputs()?;
            let mode = mode_decode(c.u8()?)?;
            let n_events = c.u32()?;
            let mut fault_events = Vec::with_capacity(n_events as usize);
            for _ in 0..n_events {
                let time = c.f64()?;
                let kind_byte = c.u8()?;
                let at_step = c.u64()?;
                let kind = kind_decode(kind_byte, at_step)?;
                let channel = channel_decode(c.u8()?)?;
                let value = c.f64()?;
                fault_events.push(FaultEvent {
                    time,
                    kind,
                    channel,
                    value,
                });
            }
            records.push(JournalRecord {
                step,
                time,
                hw_sense: HwSense {
                    outputs: hw_outputs,
                    ext: hw_ext,
                    current: hw_current,
                    active_threads: hw_threads,
                    slo: hw_slo,
                    limits: hw_limits,
                },
                os_sense: OsSense {
                    outputs: os_outputs,
                    ext: os_ext,
                    current: os_current,
                    active_threads: os_threads,
                    system: os_system,
                    slo: os_slo,
                    limits: os_limits,
                },
                hw_u,
                os_u,
                mode,
                fault_events,
            });
        }
        if c.pos != bytes.len() {
            return Err(decode_err("trailing bytes after last record"));
        }
        Ok(Journal { records })
    }
}

/// The outcome of replaying a journal against a controller stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayOutcome {
    /// Invocations replayed.
    pub steps: u64,
    /// Invocations whose actuation differed from the recorded one by at
    /// least one bit.
    pub divergences: u64,
    /// The first diverging invocation index, if any.
    pub first_divergence: Option<u64>,
}

impl ReplayOutcome {
    /// Whether the replay reproduced every recorded actuation exactly.
    pub fn is_exact(&self) -> bool {
        self.divergences == 0
    }
}

/// Replays every journal record through `invoke`, comparing the produced
/// actuation against the recorded one bit-for-bit. The closure is handed
/// the recorded senses in invocation order — a deterministic controller
/// stack freshly instantiated for the same scheme must reproduce the
/// recorded stream exactly.
///
/// # Errors
///
/// Propagates the first error `invoke` returns.
pub fn replay_with(
    journal: &Journal,
    mut invoke: impl FnMut(&HwSense, &OsSense) -> Result<(HwInputs, OsInputs)>,
) -> Result<ReplayOutcome> {
    let mut outcome = ReplayOutcome::default();
    for r in journal.records() {
        let (hw_u, os_u) = invoke(&r.hw_sense, &r.os_sense)?;
        let same = hw_u
            .to_vec()
            .iter()
            .zip(r.hw_u.to_vec())
            .all(|(a, b)| a.to_bits() == b.to_bits())
            && os_u
                .to_vec()
                .iter()
                .zip(r.os_u.to_vec())
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !same {
            outcome.divergences += 1;
            if outcome.first_divergence.is_none() {
                outcome.first_divergence = Some(r.step);
            }
        }
        outcome.steps += 1;
    }
    Ok(outcome)
}

fn decode_err(why: &'static str) -> Error {
    Error::NoSolution {
        op: "journal_decode",
        why,
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_limits(out: &mut Vec<u8>, l: &Limits) {
    put_f64(out, l.p_big_max);
    put_f64(out, l.p_little_max);
    put_f64(out, l.temp_max);
    put_f64(out, l.latency_slo_s);
}

fn put_slo(out: &mut Vec<u8>, s: &SloSense) {
    out.push(u8::from(s.active));
    put_f64(out, s.p95_s);
    put_f64(out, s.p99_s);
    put_f64(out, s.backlog_frac);
    put_f64(out, s.drop_frac);
}

fn mode_code(mode: Option<SupervisorMode>) -> u8 {
    match mode {
        None => 0,
        Some(SupervisorMode::Primary) => 1,
        Some(SupervisorMode::Fallback) => 2,
        Some(SupervisorMode::Safe) => 3,
    }
}

fn mode_decode(code: u8) -> Result<Option<SupervisorMode>> {
    Ok(match code {
        0 => None,
        1 => Some(SupervisorMode::Primary),
        2 => Some(SupervisorMode::Fallback),
        3 => Some(SupervisorMode::Safe),
        _ => return Err(decode_err("invalid supervisor-mode code")),
    })
}

fn kind_code(kind: FaultKind) -> (u8, u64) {
    match kind {
        FaultKind::StuckAt => (0, 0),
        FaultKind::DroppedSample => (1, 0),
        FaultKind::Spike => (2, 0),
        FaultKind::BiasNoise => (3, 0),
        FaultKind::DelayedRead => (4, 0),
        FaultKind::DvfsRejected => (5, 0),
        FaultKind::HotplugIgnored => (6, 0),
        FaultKind::ActuationLag => (7, 0),
        FaultKind::Crash { at_step } => (8, at_step),
    }
}

fn kind_decode(code: u8, at_step: u64) -> Result<FaultKind> {
    Ok(match code {
        0 => FaultKind::StuckAt,
        1 => FaultKind::DroppedSample,
        2 => FaultKind::Spike,
        3 => FaultKind::BiasNoise,
        4 => FaultKind::DelayedRead,
        5 => FaultKind::DvfsRejected,
        6 => FaultKind::HotplugIgnored,
        7 => FaultKind::ActuationLag,
        8 => FaultKind::Crash { at_step },
        _ => return Err(decode_err("invalid fault-kind code")),
    })
}

fn channel_code(channel: FaultChannel) -> u8 {
    match channel {
        FaultChannel::PowerBig => 0,
        FaultChannel::PowerLittle => 1,
        FaultChannel::Temp => 2,
        FaultChannel::Dvfs => 3,
        FaultChannel::Hotplug => 4,
        FaultChannel::Actuation => 5,
    }
}

fn channel_decode(code: u8) -> Result<FaultChannel> {
    Ok(match code {
        0 => FaultChannel::PowerBig,
        1 => FaultChannel::PowerLittle,
        2 => FaultChannel::Temp,
        3 => FaultChannel::Dvfs,
        4 => FaultChannel::Hotplug,
        5 => FaultChannel::Actuation,
        _ => return Err(decode_err("invalid fault-channel code")),
    })
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8]> {
        if self.pos + n > self.buf.len() {
            return Err(decode_err("truncated journal"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn hw_inputs(&mut self) -> Result<HwInputs> {
        Ok(HwInputs {
            big_cores: self.f64()?,
            little_cores: self.f64()?,
            f_big: self.f64()?,
            f_little: self.f64()?,
        })
    }

    fn os_inputs(&mut self) -> Result<OsInputs> {
        Ok(OsInputs {
            threads_big: self.f64()?,
            packing_big: self.f64()?,
            packing_little: self.f64()?,
        })
    }

    fn limits(&mut self) -> Result<Limits> {
        Ok(Limits {
            p_big_max: self.f64()?,
            p_little_max: self.f64()?,
            temp_max: self.f64()?,
            latency_slo_s: self.f64()?,
        })
    }

    fn slo(&mut self) -> Result<SloSense> {
        let active = match self.u8()? {
            0 => false,
            1 => true,
            _ => return Err(decode_err("invalid slo-active flag")),
        };
        Ok(SloSense {
            active,
            p95_s: self.f64()?,
            p99_s: self.f64()?,
            backlog_frac: self.f64()?,
            drop_frac: self.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(step: u64) -> JournalRecord {
        let k = step as f64;
        JournalRecord {
            step,
            time: 0.5 * k,
            hw_sense: HwSense {
                outputs: HwOutputs {
                    perf: 3.0 + k,
                    p_big: 2.5,
                    p_little: 0.2,
                    temp: 61.0 + 1e-9 * k,
                },
                ext: OsInputs {
                    threads_big: 4.0,
                    packing_big: 1.5,
                    packing_little: 2.0,
                },
                current: HwInputs {
                    big_cores: 4.0,
                    little_cores: 4.0,
                    f_big: 1.8,
                    f_little: 1.4,
                },
                active_threads: 8,
                slo: SloSense {
                    active: step.is_multiple_of(2),
                    p95_s: 0.4 + 1e-6 * k,
                    p99_s: 0.9 + 1e-6 * k,
                    backlog_frac: 0.25,
                    drop_frac: 0.01,
                },
                limits: Limits::default(),
            },
            os_sense: OsSense {
                outputs: OsOutputs {
                    perf_little: 0.8,
                    perf_big: 2.2 + k,
                    spare_diff: -1.0,
                },
                ext: HwInputs {
                    big_cores: 4.0,
                    little_cores: 4.0,
                    f_big: 1.8,
                    f_little: 1.4,
                },
                current: OsInputs {
                    threads_big: 4.0,
                    packing_big: 1.5,
                    packing_little: 2.0,
                },
                active_threads: 8,
                system: HwOutputs {
                    perf: 3.0,
                    p_big: 2.5,
                    p_little: 0.2,
                    temp: 61.0,
                },
                slo: SloSense {
                    active: true,
                    p95_s: 0.5,
                    p99_s: 1.1 + 1e-9 * k,
                    backlog_frac: 0.6,
                    drop_frac: 0.05,
                },
                limits: Limits::default(),
            },
            hw_u: HwInputs {
                big_cores: 3.0,
                little_cores: 4.0,
                f_big: 1.6 + 1e-12 * k,
                f_little: 1.2,
            },
            os_u: OsInputs {
                threads_big: 5.0,
                packing_big: 2.0,
                packing_little: 1.5,
            },
            mode: if step.is_multiple_of(2) {
                Some(SupervisorMode::Primary)
            } else {
                Some(SupervisorMode::Fallback)
            },
            fault_events: if step == 1 {
                vec![
                    FaultEvent {
                        time: 0.73,
                        kind: FaultKind::Spike,
                        channel: FaultChannel::PowerBig,
                        value: 17.5,
                    },
                    FaultEvent {
                        time: 0.74,
                        kind: FaultKind::Crash { at_step: 9 },
                        channel: FaultChannel::Actuation,
                        value: 0.0,
                    },
                ]
            } else {
                Vec::new()
            },
        }
    }

    #[test]
    fn serialization_roundtrips_bit_for_bit() {
        let mut j = Journal::new();
        for s in 0..4 {
            j.push(record(s));
        }
        // A raw (mode-less) record and a NaN sense value must survive too.
        let mut raw = record(4);
        raw.mode = None;
        raw.hw_sense.outputs.p_big = f64::from_bits(0x7FF8_0000_DEAD_BEEF); // NaN payload
        j.push(raw);

        let bytes = j.to_bytes();
        let back = Journal::from_bytes(&bytes).expect("decode");
        assert_eq!(back.len(), j.len());
        for (a, b) in j.records().iter().zip(back.records()) {
            assert!(
                a.bit_identical(b),
                "record {} changed across the wire",
                a.step
            );
        }
    }

    #[test]
    fn decode_rejects_corrupt_buffers() {
        let mut j = Journal::new();
        j.push(record(0));
        let bytes = j.to_bytes();

        // Truncated mid-record.
        assert!(Journal::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0xAB);
        assert!(Journal::from_bytes(&long).is_err());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(Journal::from_bytes(&bad).is_err());
        // Unsupported version.
        let mut ver = bytes.clone();
        ver[4] = 99;
        assert!(Journal::from_bytes(&ver).is_err());
        // Invalid mode code (mode byte sits right before the event count,
        // 8 + 4 f64 bytes from the end of this single-event-free record).
        let mut j2 = Journal::new();
        let mut r = record(2);
        r.fault_events.clear();
        j2.push(r);
        let mut b2 = j2.to_bytes();
        let mode_at = b2.len() - 4 - 1;
        b2[mode_at] = 9;
        assert!(Journal::from_bytes(&b2).is_err());
    }

    #[test]
    fn replay_compares_actuations_bit_for_bit() {
        let mut j = Journal::new();
        for s in 0..6 {
            j.push(record(s));
        }
        // Echoing the recorded actuation is an exact replay.
        let exact = replay_with(&j, |hw, _os| {
            // The test record derives hw_u deterministically from the sense,
            // so reproduce it the same way the recorder did.
            let k = (hw.outputs.perf - 3.0).round();
            Ok((
                HwInputs {
                    big_cores: 3.0,
                    little_cores: 4.0,
                    f_big: 1.6 + 1e-12 * k,
                    f_little: 1.2,
                },
                OsInputs {
                    threads_big: 5.0,
                    packing_big: 2.0,
                    packing_little: 1.5,
                },
            ))
        })
        .expect("replay");
        assert_eq!(exact.steps, 6);
        assert!(exact.is_exact(), "{exact:?}");

        // A single-ULP perturbation at step 3 is a divergence.
        let off = replay_with(&j, |hw, _os| {
            let k = (hw.outputs.perf - 3.0).round();
            let mut f_big = 1.6 + 1e-12 * k;
            if k as u64 == 3 {
                f_big = f64::from_bits(f_big.to_bits() + 1);
            }
            Ok((
                HwInputs {
                    big_cores: 3.0,
                    little_cores: 4.0,
                    f_big,
                    f_little: 1.2,
                },
                OsInputs {
                    threads_big: 5.0,
                    packing_big: 2.0,
                    packing_little: 1.5,
                },
            ))
        })
        .expect("replay");
        assert_eq!(off.divergences, 1);
        assert_eq!(off.first_divergence, Some(3));
    }
}
