//! The optimizer modules of Section IV-D.
//!
//! Each SSV (or LQG) controller tracks output *targets*; the optimizer
//! nudges those targets to minimize E×D (∝ Power/Perf²), using the paper's
//! asymmetric rule: while E×D improves, raise the performance target a lot
//! and the power targets a little; when a move backfires, discard it and
//! move the other way — performance down a little, power down a lot.

use serde::{Deserialize, Serialize};

use crate::signals::{HwOutputs, Limits, OsOutputs};

/// Hill-climbing state shared by the optimizers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum Direction {
    /// Pushing performance up (the optimistic move).
    Up,
    /// Backing power off after a regression.
    Down,
}

/// Optimizer for the hardware controller's four output targets.
///
/// Measurement noise (the HMP packing jitter, sensor staleness) would make
/// a naive better/worse comparison flip direction constantly, so the
/// optimizer compares an exponentially smoothed E×D against the best level
/// seen so far, with a tolerance band: it keeps climbing inside the band,
/// and only backs power off on a clear regression.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HwOptimizer {
    limits: Limits,
    ema_exd: f64,
    best_exd: f64,
    initialized: bool,
    /// Current targets (Perf₀, P_big₀, P_little₀, Temp₀).
    pub targets: HwOutputs,
}

impl HwOptimizer {
    /// Creates an optimizer for the given limits.
    pub fn new(limits: Limits) -> Self {
        HwOptimizer {
            limits,
            ema_exd: f64::INFINITY,
            best_exd: f64::INFINITY,
            initialized: false,
            targets: HwOutputs::default(),
        }
    }

    /// The paper's E×D proxy: Power/Perf² (lower is better).
    pub fn exd_proxy(y: &HwOutputs) -> f64 {
        let perf = y.perf.max(0.05);
        (y.p_big + y.p_little) / (perf * perf)
    }

    /// One optimizer step: reads the measured outputs, moves the targets.
    pub fn update(&mut self, y: &HwOutputs) -> HwOutputs {
        let exd = Self::exd_proxy(y);
        let rec = yukta_obs::handle();
        if rec.enabled() {
            rec.counter_add("optimizer.hw_steps", 1);
            rec.gauge_set("optimizer.hw_exd_proxy", exd);
        }
        if !self.initialized {
            self.initialized = true;
            // Optimistic start: aim near the constraint envelope right
            // away (the E×D optimum sits at or below the power limit);
            // the Down moves retreat quickly if that is wrong for this
            // workload. Starting from the near-idle measurements instead
            // would waste tens of seconds ramping.
            self.targets = HwOutputs {
                perf: y.perf.max(6.0),
                p_big: self.limits.p_big_max * 0.85,
                p_little: self.limits.p_little_max * 0.85,
                temp: self.limits.temp_max - 4.0,
            };
            self.ema_exd = exd;
            self.best_exd = exd;
            return self.targets;
        }
        self.ema_exd = 0.6 * self.ema_exd + 0.4 * exd;
        if self.ema_exd < self.best_exd {
            self.best_exd = self.ema_exd;
        }
        let direction = if self.ema_exd > self.best_exd * 1.20 {
            Direction::Down
        } else {
            Direction::Up
        };
        match direction {
            Direction::Up => {
                // Raise Perf₀ a lot, power targets a little. The limits
                // are enforced on the *measured* outputs: targets may run
                // ahead of the physical limit to trim out the inner loop's
                // steady-state offset (the optimizer is the slow integral
                // action of the stack), but the moment a measurement
                // crosses its limit the corresponding target retreats fast.
                self.targets.perf += 0.40;
                if y.p_big < self.limits.p_big_max * 0.97 {
                    self.targets.p_big += 0.08;
                } else {
                    self.targets.p_big -= 0.30;
                }
                if y.p_little < self.limits.p_little_max * 0.97 {
                    self.targets.p_little += 0.008;
                } else {
                    self.targets.p_little -= 0.03;
                }
                if y.temp > self.limits.temp_max - 1.0 {
                    self.targets.p_big -= 0.30;
                }
            }
            Direction::Down => {
                // Discard the move: Perf₀ down a little, power down more.
                self.targets.perf = (self.targets.perf - 0.15).max(0.3);
                self.targets.p_big = (self.targets.p_big - 0.12).max(0.3);
                self.targets.p_little = (self.targets.p_little - 0.012).max(0.05);
                // Let the reference level forget so exploration resumes
                // once the regression clears (prevents noise-driven
                // target collapse).
                self.best_exd *= 1.05;
            }
        }
        // Keep targets inside a sane envelope: they may overshoot the
        // physical limits (integral trim) but not run away.
        self.targets.perf = self.targets.perf.clamp(0.3, 14.0);
        self.targets.p_big = self.targets.p_big.clamp(0.3, self.limits.p_big_max * 2.0);
        self.targets.p_little = self
            .targets
            .p_little
            .clamp(0.05, self.limits.p_little_max * 2.0);
        self.targets.temp = self.limits.temp_max - 4.0;
        self.targets
    }

    /// Floats appended by [`HwOptimizer::save_state`].
    pub const STATE_FLOATS: usize = 6;
    /// Ints appended by [`HwOptimizer::save_state`].
    pub const STATE_INTS: usize = 1;

    /// Appends the hill-climbing state (EMA, best-seen, targets,
    /// initialized flag) to a checkpoint payload. `limits` is
    /// construction-time configuration and is not part of the state.
    pub fn save_state(&self, floats: &mut Vec<f64>, ints: &mut Vec<i64>) {
        floats.extend_from_slice(&[
            self.ema_exd,
            self.best_exd,
            self.targets.perf,
            self.targets.p_big,
            self.targets.p_little,
            self.targets.temp,
        ]);
        ints.push(i64::from(self.initialized));
    }

    /// Restores state appended by [`HwOptimizer::save_state`]. Slices must
    /// be exactly [`HwOptimizer::STATE_FLOATS`]/[`HwOptimizer::STATE_INTS`]
    /// long (the caller validates lengths before splitting the payload).
    pub fn restore_state(&mut self, floats: &[f64], ints: &[i64]) {
        self.ema_exd = floats[0];
        self.best_exd = floats[1];
        self.targets = HwOutputs {
            perf: floats[2],
            p_big: floats[3],
            p_little: floats[4],
            temp: floats[5],
        };
        self.initialized = ints[0] != 0;
    }
}

/// Optimizer for the software controller's three output targets. Uses the
/// same smoothed best-seen comparison as [`HwOptimizer`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OsOptimizer {
    ema_exd: f64,
    best_exd: f64,
    initialized: bool,
    spare_step: f64,
    ticks: u64,
    /// Current targets (Perf_little₀, Perf_big₀, ΔSC₀).
    pub targets: OsOutputs,
}

impl OsOptimizer {
    /// Creates the optimizer.
    pub fn new() -> Self {
        OsOptimizer {
            ema_exd: f64::INFINITY,
            best_exd: f64::INFINITY,
            initialized: false,
            spare_step: 1.0,
            ticks: 0,
            targets: OsOutputs::default(),
        }
    }

    /// One optimizer step. `system` carries the power/perf measurements the
    /// OS layer reads to evaluate E×D.
    pub fn update(&mut self, y: &OsOutputs, system: &HwOutputs) -> OsOutputs {
        self.ticks += 1;
        let exd = HwOptimizer::exd_proxy(system);
        let rec = yukta_obs::handle();
        if rec.enabled() {
            rec.counter_add("optimizer.os_steps", 1);
            rec.gauge_set("optimizer.os_exd_proxy", exd);
        }
        if !self.initialized {
            self.initialized = true;
            // Optimistic start (see HwOptimizer): most of the throughput
            // lives on the big cluster.
            self.targets = OsOutputs {
                perf_little: y.perf_little.max(0.7),
                perf_big: y.perf_big.max(4.5),
                spare_diff: 1.0,
            };
            self.ema_exd = exd;
            self.best_exd = exd;
            return self.targets;
        }
        self.ema_exd = 0.6 * self.ema_exd + 0.4 * exd;
        if self.ema_exd < self.best_exd {
            self.best_exd = self.ema_exd;
        }
        let improved = self.ema_exd <= self.best_exd * 1.20;
        if improved {
            self.targets.perf_big += 0.30;
            // The little cluster saturates early; an unreachable
            // perf_little target would permanently pressure threads off
            // the big cluster, so it climbs slowly and only while the
            // measurement follows.
            if y.perf_little > 0.6 * self.targets.perf_little {
                self.targets.perf_little += 0.03;
            }
        } else {
            self.targets.perf_big = (self.targets.perf_big - 0.12).max(0.2);
            self.targets.perf_little = (self.targets.perf_little - 0.04).max(0.05);
            self.best_exd *= 1.05;
        }
        // Every few invocations probe the spare-capacity balance; keep the
        // probe direction while it pays off.
        if self.ticks.is_multiple_of(4) {
            if !improved {
                self.spare_step = -self.spare_step;
            }
            self.targets.spare_diff = (self.targets.spare_diff + self.spare_step).clamp(-4.0, 4.0);
        }
        self.targets.perf_big = self.targets.perf_big.min(12.0);
        self.targets.perf_little = self.targets.perf_little.min(1.6);
        self.targets
    }

    /// Floats appended by [`OsOptimizer::save_state`].
    pub const STATE_FLOATS: usize = 6;
    /// Ints appended by [`OsOptimizer::save_state`].
    pub const STATE_INTS: usize = 2;

    /// Appends the hill-climbing state (EMA, best-seen, probe step and
    /// direction, targets, tick count, initialized flag) to a checkpoint
    /// payload.
    pub fn save_state(&self, floats: &mut Vec<f64>, ints: &mut Vec<i64>) {
        floats.extend_from_slice(&[
            self.ema_exd,
            self.best_exd,
            self.spare_step,
            self.targets.perf_little,
            self.targets.perf_big,
            self.targets.spare_diff,
        ]);
        ints.push(i64::from(self.initialized));
        ints.push(self.ticks as i64);
    }

    /// Restores state appended by [`OsOptimizer::save_state`]. Slices must
    /// be exactly [`OsOptimizer::STATE_FLOATS`]/[`OsOptimizer::STATE_INTS`]
    /// long (the caller validates lengths before splitting the payload).
    pub fn restore_state(&mut self, floats: &[f64], ints: &[i64]) {
        self.ema_exd = floats[0];
        self.best_exd = floats[1];
        self.spare_step = floats[2];
        self.targets = OsOutputs {
            perf_little: floats[3],
            perf_big: floats[4],
            spare_diff: floats[5],
        };
        self.initialized = ints[0] != 0;
        self.ticks = ints[1] as u64;
    }
}

impl Default for OsOptimizer {
    fn default() -> Self {
        OsOptimizer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outputs(perf: f64, p_big: f64) -> HwOutputs {
        HwOutputs {
            perf,
            p_big,
            p_little: 0.2,
            temp: 60.0,
        }
    }

    #[test]
    fn exd_proxy_prefers_fast_efficient_points() {
        // Same power, double performance → 4x lower proxy.
        let slow = HwOptimizer::exd_proxy(&outputs(2.0, 3.0));
        let fast = HwOptimizer::exd_proxy(&outputs(4.0, 3.0));
        assert!((slow / fast - 4.0).abs() < 1e-9);
    }

    #[test]
    fn first_update_initializes_targets_optimistically() {
        let mut opt = HwOptimizer::new(Limits::default());
        let t = opt.update(&outputs(3.0, 2.0));
        // Optimistic start: near the power envelope, perf at least 6.
        assert!((t.p_big - 3.3 * 0.85).abs() < 1e-9);
        assert!(t.perf >= 6.0);
        assert_eq!(t.temp, 75.0);
    }

    #[test]
    fn improving_exd_raises_perf_target_aggressively() {
        let mut opt = HwOptimizer::new(Limits::default());
        opt.update(&outputs(3.0, 2.0));
        let before = opt.targets;
        // Better E x D (higher perf at same power) keeps climbing: perf
        // moves 5x faster than the power target (the paper's asymmetry).
        let t = opt.update(&outputs(3.5, 2.0));
        assert!((t.perf - before.perf - 0.40).abs() < 1e-9);
        assert!((t.p_big - before.p_big - 0.08).abs() < 1e-9);
    }

    #[test]
    fn regression_backs_power_off_aggressively() {
        let mut opt = HwOptimizer::new(Limits::default());
        opt.update(&outputs(3.0, 2.0));
        opt.update(&outputs(3.5, 2.0));
        let before = opt.targets;
        // Much worse E x D -> reverse with the opposite asymmetry; a single
        // bad sample may not cross the smoothed threshold, so regress hard
        // for a few invocations.
        let mut t = before;
        for _ in 0..6 {
            t = opt.update(&outputs(0.8, 3.0));
        }
        assert!(
            t.perf < before.perf + 6.0 * 0.40,
            "perf target kept climbing"
        );
        assert!(
            t.p_big < before.p_big + 6.0 * 0.08,
            "power target kept climbing"
        );
    }

    #[test]
    fn power_targets_respect_limits() {
        let mut opt = HwOptimizer::new(Limits::default());
        opt.update(&outputs(3.0, 3.2));
        // Keep improving for many steps: targets may overshoot the limit
        // (integral trim) but must stay inside the sane envelope, and must
        // retreat when the *measured* power exceeds the limit.
        for k in 0..100 {
            let t = opt.update(&outputs(3.0 + k as f64 * 0.1, 3.2));
            assert!(t.p_big <= 3.3 * 2.0 + 1e-9);
            assert!(t.p_little <= 0.33 * 2.0 + 1e-9);
            assert!(t.temp < 79.0);
        }
        let high = opt.targets.p_big;
        // Measured power over the limit: target retreats immediately.
        let t = opt.update(&outputs(9.0, 3.5));
        assert!(t.p_big < high, "target must retreat on measured violation");
    }

    #[test]
    fn os_optimizer_probes_spare_capacity() {
        let mut opt = OsOptimizer::new();
        let y = OsOutputs {
            perf_little: 0.5,
            perf_big: 2.0,
            spare_diff: 0.0,
        };
        let sys = outputs(3.0, 2.0);
        let first = opt.update(&y, &sys);
        assert_eq!(first.spare_diff, 1.0);
        let mut seen_change = false;
        let mut prev = first.spare_diff;
        for _ in 0..12 {
            let t = opt.update(&y, &sys);
            if (t.spare_diff - prev).abs() > 1e-9 {
                seen_change = true;
            }
            prev = t.spare_diff;
            assert!((-4.0..=4.0).contains(&t.spare_diff));
        }
        assert!(seen_change, "ΔSC target should be probed");
    }

    #[test]
    fn os_optimizer_raises_big_perf_faster_than_little() {
        let mut opt = OsOptimizer::new();
        let y = OsOutputs {
            perf_little: 0.5,
            perf_big: 2.0,
            spare_diff: 0.0,
        };
        let sys = outputs(3.0, 2.0);
        opt.update(&y, &sys);
        let t0 = opt.targets;
        let t = opt.update(&y, &outputs(3.5, 2.0));
        assert!(t.perf_big - t0.perf_big > t.perf_little - t0.perf_little);
    }
}
