//! The end-to-end controller design pipeline of Figure 3.
//!
//! 1. **Characterize** — run the (disjoint) training workloads on the
//!    board while random-walking every actuator over its discrete grid,
//!    recording normalized inputs, external signals, and outputs at the
//!    500 ms controller period.
//! 2. **Identify** — fit black-box MIMO ARX models for each layer (the
//!    hardware model takes the OS inputs as measured external signals and
//!    vice versa), plus the layer-solo and joint models the LQG baselines
//!    need.
//! 3. **Synthesize** — run D–K iteration per layer with the Table II/III
//!    bounds, weights, and guardbands.
//!
//! The default design is deterministic and cached process-wide
//! ([`default_design`]); sensitivity experiments build variants through
//! [`build_design`] with modified [`DesignOptions`].

use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yukta_board::{Actuation, Board, BoardConfig, Cluster, Placement};
use yukta_control::dk::{DkOptions, SsvSynthesis, synthesize_ssv};
use yukta_control::plant::SsvSpec;
use yukta_control::ss::StateSpace;
use yukta_control::sysid::{SysIdConfig, calibrate_dc_gains, fit_arx, validation_residual};
use yukta_linalg::{Error, Result};
use yukta_workloads::WorkloadRun;
use yukta_workloads::catalog::training;

use crate::signals::{ActuatorGrids, SignalRanges, spare_capacity};

/// The excitation schedule used during characterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExcitationKind {
    /// Per-channel maximum-length PRBS between the operating-region floor
    /// and the grid top, held for three controller periods per chip. Flat
    /// power across the band; the default.
    Prbs,
    /// Per-channel Schroeder multisine on an interleaved frequency comb:
    /// simultaneous channels are exactly orthogonal over the record.
    Multisine,
    /// The legacy bounded random walk (±3 grid steps every third period).
    /// Kept for ablation: its power collapses onto DC, which is what the
    /// PRBS/multisine schedules fix.
    RandomWalk,
}

/// Guardband auto-tuning: derive the uncertainty radius Δ from a held-out
/// validation residual instead of a fixed Table II/III constant.
///
/// A guardband much wider than the model's actual prediction error forces
/// the µ synthesis to defend against plants that cannot occur, inflating
/// µ̂ and detuning the controller; one narrower than the residual voids the
/// robustness guarantee. The tuner sets
/// `Δ = clamp(margin · residual, min, max)` per layer, where `residual` is
/// the worst-output relative RMS one-step prediction error on a held-out
/// tail of the excitation record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardbandConfig {
    /// Tune Δ from the validation residual; `false` keeps the fixed
    /// `hw_uncertainty`/`os_uncertainty` values.
    pub auto: bool,
    /// Safety factor applied to the measured residual.
    pub margin: f64,
    /// Floor of the tuned radius (never trust a residual of zero).
    pub min: f64,
    /// Ceiling of the tuned radius (beyond this the synthesis gives up
    /// performance for phantom robustness).
    pub max: f64,
    /// Fraction of the excitation record held out for validation.
    pub holdout_frac: f64,
}

impl Default for GuardbandConfig {
    fn default() -> Self {
        GuardbandConfig {
            auto: true,
            margin: 1.25,
            min: 0.10,
            max: 0.60,
            holdout_frac: 0.25,
        }
    }
}

impl GuardbandConfig {
    /// Checks the configuration before the design pipeline starts.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSolution`] (op `guardband_config`) naming the
    /// first violated constraint.
    pub fn validate(&self) -> Result<()> {
        let fail = |why: &'static str| Error::NoSolution {
            op: "guardband_config",
            why,
        };
        if !(self.margin.is_finite() && self.margin > 0.0) {
            return Err(fail("margin must be positive and finite"));
        }
        if !(self.min.is_finite() && self.min > 0.0) {
            return Err(fail("min radius must be positive and finite"));
        }
        if !(self.max.is_finite() && self.max >= self.min) {
            return Err(fail("max radius must be finite and at least min"));
        }
        if !(self.holdout_frac > 0.0 && self.holdout_frac < 0.9) {
            return Err(fail("holdout_frac must lie in (0, 0.9)"));
        }
        Ok(())
    }

    /// The tuned radius for a measured validation residual.
    pub fn radius(&self, residual: f64) -> f64 {
        (self.margin * residual).clamp(self.min, self.max)
    }
}

/// Designer-facing knobs (Tables II and III), exposed so the sensitivity
/// experiments of Section VI-E can sweep them.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignOptions {
    /// HW output deviation bounds (Perf, P_big, P_little, Temp) as range
    /// fractions.
    pub hw_bounds: [f64; 4],
    /// HW input weights (#big, #little, f_big, f_little).
    pub hw_weights: [f64; 4],
    /// HW uncertainty guardband (used as-is when `guardband.auto` is off;
    /// otherwise the auto-tuner overrides it).
    pub hw_uncertainty: f64,
    /// OS output deviation bounds (Perf_little, Perf_big, ΔSC).
    pub os_bounds: [f64; 3],
    /// OS input weights (threads_big, packing_big, packing_little).
    pub os_weights: [f64; 3],
    /// OS uncertainty guardband (see `hw_uncertainty`).
    pub os_uncertainty: f64,
    /// Seed of the excitation schedules (every actuator channel derives
    /// its own salted stream from this).
    pub seed: u64,
    /// Seconds of excitation per training workload.
    pub excitation_secs: f64,
    /// Excitation schedule family.
    pub excitation: ExcitationKind,
    /// Guardband auto-tuning configuration.
    pub guardband: GuardbandConfig,
    /// DC boost of the shaped performance weight (see `SsvSpec`).
    pub perf_dc_boost: f64,
    /// Corner frequency of the shaped performance weight (rad/s).
    pub perf_corner: f64,
    /// Calibration of the absolute input-weight level (see `SsvSpec`).
    pub effort_scale: f64,
}

impl Default for DesignOptions {
    fn default() -> Self {
        // Bounds and weights exactly as Tables II and III; the guardbands
        // are auto-tuned from the validation residual by default.
        DesignOptions {
            hw_bounds: [0.20, 0.10, 0.10, 0.10],
            hw_weights: [1.0, 1.0, 1.0, 1.0],
            hw_uncertainty: 0.40,
            os_bounds: [0.20, 0.20, 0.20],
            os_weights: [2.0, 2.0, 2.0],
            os_uncertainty: 0.50,
            seed: 0x5EED_CAFE,
            excitation_secs: 60.0,
            excitation: ExcitationKind::Prbs,
            guardband: GuardbandConfig::default(),
            perf_dc_boost: 5.0,
            perf_corner: 0.15,
            effort_scale: 1.0,
        }
    }
}

/// Normalized excitation data at the controller period.
#[derive(Debug, Clone, Default)]
pub struct ExcitationData {
    /// Normalized hardware inputs per sample (4 columns).
    pub u_hw: Vec<Vec<f64>>,
    /// Normalized OS inputs per sample (3 columns).
    pub u_os: Vec<Vec<f64>>,
    /// Normalized hardware outputs per sample (4 columns).
    pub y_hw: Vec<Vec<f64>>,
    /// Normalized OS outputs per sample (3 columns).
    pub y_os: Vec<Vec<f64>>,
}

impl ExcitationData {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.u_hw.len()
    }

    /// Whether no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.u_hw.is_empty()
    }
}

/// The complete set of design artifacts every scheme draws from.
#[derive(Debug, Clone)]
pub struct Design {
    /// Synthesized hardware-layer SSV controller.
    pub hw_ssv: SsvSynthesis,
    /// Synthesized software-layer SSV controller.
    pub os_ssv: SsvSynthesis,
    /// HW model with external signals: `[u_hw; u_os] → y_hw`.
    pub hw_model_full: StateSpace,
    /// OS model with external signals: `[u_os; u_hw] → y_os`.
    pub os_model_full: StateSpace,
    /// HW-only model for the decoupled LQG baseline: `u_hw → y_hw`.
    pub hw_model_solo: StateSpace,
    /// OS-only model: `u_os → y_os`.
    pub os_model_solo: StateSpace,
    /// Joint model for the monolithic LQG: `[u_hw; u_os] → [y_hw; y_os]`.
    pub mono_model: StateSpace,
    /// Per-output identification fit of the full HW model.
    pub hw_fit: Vec<f64>,
    /// Per-output identification fit of the full OS model.
    pub os_fit: Vec<f64>,
    /// The HW uncertainty radius the synthesis actually used (auto-tuned
    /// when `options.guardband.auto`).
    pub hw_uncertainty_used: f64,
    /// The OS uncertainty radius the synthesis actually used.
    pub os_uncertainty_used: f64,
    /// Held-out validation residual of the HW model (worst output,
    /// relative RMS); `NaN` when auto-tuning is off.
    pub hw_residual: f64,
    /// Held-out validation residual of the OS model.
    pub os_residual: f64,
    /// The options the design was built with.
    pub options: DesignOptions,
}

/// Collects excitation data by driving every actuator with its own
/// deterministic schedule (PRBS, multisine, or the legacy random walk)
/// while the training workloads run.
pub fn collect_excitation(opts: &DesignOptions) -> ExcitationData {
    use yukta_control::sysid::excitation;
    let mut data = ExcitationData::default();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let ranges = SignalRanges::xu3();
    let grids = ActuatorGrids::xu3();
    for (wl_index, wl) in training::all().into_iter().enumerate() {
        let mut cfg = BoardConfig::odroid_xu3();
        cfg.seed = opts.seed ^ 0xB0A2D;
        let mut board = Board::new(cfg);
        let mut run = WorkloadRun::new(&wl);
        // Random-walk state: grid indices, restricted to the operating
        // region the controllers will live in. Linearizing the CV²f power
        // law over the full DVFS range would poison the model's gains;
        // identifying where the closed loop operates (upper half of the
        // frequency range, 2-4 cores) keeps the local fit accurate — the
        // guardband covers the rest, exactly as the paper argues.
        let mut idx = [
            grids.big_cores.quantize_index(4.0),
            grids.little_cores.quantize_index(4.0),
            grids.f_big.quantize_index(1.4),
            grids.f_little.quantize_index(1.0),
            grids.threads_big.quantize_index(4.0),
            grids.packing.quantize_index(1.0),
            grids.packing.quantize_index(1.0),
        ];
        // Lower bound of each walk (same order as `idx`).
        let idx_lo = [
            grids.big_cores.quantize_index(2.0),
            grids.little_cores.quantize_index(2.0),
            grids.f_big.quantize_index(0.8),
            grids.f_little.quantize_index(0.5),
            grids.threads_big.quantize_index(2.0),
            0,
            0,
        ];
        let grid_of = |k: usize| -> &yukta_control::quant::InputGrid {
            match k {
                0 => &grids.big_cores,
                1 => &grids.little_cores,
                2 => &grids.f_big,
                3 => &grids.f_little,
                4 => &grids.threads_big,
                5 | 6 => &grids.packing,
                _ => unreachable!(),
            }
        };
        let mut perf_reader_big = yukta_board::sensors::BipsReader::new();
        let mut perf_reader_little = yukta_board::sensors::BipsReader::new();
        let steps_per_interval = (0.5 / board.config().dt).round() as usize;
        let n_intervals = (opts.excitation_secs / 0.5) as usize;
        // Per-channel index schedules, precomputed for the whole record.
        // Every channel gets its own salted stream of the experiment seed
        // (workload index included in the salt so records differ across
        // workloads), shaped onto the quantized actuator grid between the
        // operating-region floor and the grid top.
        let wl_seed = opts.seed ^ (wl_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let schedules: Option<Vec<Vec<usize>>> = match opts.excitation {
            ExcitationKind::RandomWalk => None,
            kind => Some(
                (0..7)
                    .map(|k| {
                        let g = grid_of(k);
                        let lo = g.values()[idx_lo[k]];
                        let sig = match kind {
                            // Chips held three controller periods: the
                            // 10–50 ms transition stalls pollute at most
                            // one sample in three and the power band
                            // stays under the first spectral null.
                            ExcitationKind::Prbs => {
                                excitation::prbs_sequence(wl_seed, k, n_intervals, 3)
                            }
                            // Tone count capped so every channel's comb
                            // stays below the record's Nyquist bin.
                            ExcitationKind::Multisine => excitation::multisine_sequence(
                                wl_seed,
                                k,
                                7,
                                n_intervals,
                                (n_intervals / 14).clamp(1, 8),
                            ),
                            ExcitationKind::RandomWalk => unreachable!(),
                        };
                        excitation::shape_to_grid(&sig, g, lo, g.max())
                    })
                    .collect(),
            ),
        };
        // Mirror of yukta_board's counters for windowed BIPS.
        let mut counter_big = yukta_board::sensors::PerfCounter::new();
        let mut counter_little = yukta_board::sensors::PerfCounter::new();
        for interval in 0..n_intervals {
            match &schedules {
                Some(s) => {
                    for (k, i) in idx.iter_mut().enumerate() {
                        *i = s[k][interval];
                    }
                }
                // Legacy step-hold random walk: move the actuators only
                // every third controller period.
                None if interval % 3 == 0 => {
                    for (k, i) in idx.iter_mut().enumerate() {
                        let g = grid_of(k);
                        let delta: i64 = rng.gen_range(-3..=3);
                        let next = (*i as i64 + delta).clamp(idx_lo[k] as i64, g.len() as i64 - 1);
                        *i = next as usize;
                    }
                }
                None => {}
            }
            let act = Actuation {
                f_big: Some(grids.f_big.values()[idx[2]]),
                f_little: Some(grids.f_little.values()[idx[3]]),
                big_cores: Some(grids.big_cores.values()[idx[0]] as usize),
                little_cores: Some(grids.little_cores.values()[idx[1]] as usize),
                placement: Some(Placement {
                    threads_big: grids.threads_big.values()[idx[4]] as usize,
                    packing_big: grids.packing.values()[idx[5]],
                    packing_little: grids.packing.values()[idx[6]],
                }),
            };
            board.actuate(&act);
            for _ in 0..steps_per_interval {
                let loads = run.loads();
                let rep = board.step(&loads);
                counter_big.add(rep.instr_big);
                counter_little.add(rep.instr_little);
                run.advance(&rep.thread_progress);
            }
            if run.is_done() {
                break;
            }
            // Record the *effective* operating point and the outputs.
            let st = board.state();
            let n_active = run.active_threads();
            let bips_big = perf_reader_big.sample(&counter_big, board.time());
            let bips_little = perf_reader_little.sample(&counter_little, board.time());
            let tb_actual = st.placement.threads_big.min(n_active);
            let sc = spare_capacity(st.big_cores, tb_actual)
                - spare_capacity(st.little_cores, n_active - tb_actual);
            data.u_hw.push(vec![
                ranges.cores.normalize(st.big_cores as f64),
                ranges.cores.normalize(st.little_cores as f64),
                ranges.f_big.normalize(st.f_big),
                ranges.f_little.normalize(st.f_little),
            ]);
            data.u_os.push(vec![
                ranges.threads_big.normalize(tb_actual as f64),
                ranges.packing.normalize(st.placement.packing_big),
                ranges.packing.normalize(st.placement.packing_little),
            ]);
            data.y_hw.push(vec![
                ranges.perf.normalize(bips_big + bips_little),
                ranges.p_big.normalize(board.read_power(Cluster::Big)),
                ranges.p_little.normalize(board.read_power(Cluster::Little)),
                ranges.temp.normalize(st.t_hot),
            ]);
            data.y_os.push(vec![
                ranges.perf_little.normalize(bips_little),
                ranges.perf_big.normalize(bips_big),
                ranges.spare_diff.normalize(sc),
            ]);
        }
    }
    data
}

/// Measures local DC gains by single-input step experiments around the
/// nominal operating point, running one of the training workloads.
///
/// Broadband ARX regression over a nonlinear plant underestimates the
/// per-input sensitivities; these short, controlled step tests recover the
/// local gains the controller will actually face, and
/// `yukta_control::sysid::calibrate_dc_gains` folds them into the models.
///
/// Returns a 7×7 matrix: rows are the normalized outputs
/// `[perf, p_big, p_little, temp, perf_little, perf_big, ΔSC]`, columns
/// the normalized inputs `[#big, #little, f_big, f_little, threads_big,
/// packing_big, packing_little]`.
pub fn measure_dc_gains(opts: &DesignOptions) -> yukta_linalg::Mat {
    use yukta_linalg::Mat;
    let ranges = SignalRanges::xu3();
    let mut gains = Mat::zeros(7, 7);
    // Nominal operating point and the step applied per input.
    let nominal = [4.0f64, 4.0, 1.4, 0.9, 5.0, 1.0, 1.0];
    let steps: [f64; 7] = [-2.0, -2.0, 0.4, 0.4, 2.0, 1.0, 1.0];
    let wl = training::vips();
    for j in 0..7 {
        let mut cfg = BoardConfig::odroid_xu3();
        cfg.seed = opts.seed ^ 0xCA11B ^ (j as u64);
        // Quiet the scheduler noise during calibration so a single step
        // resolves cleanly (a short, controlled experiment).
        cfg.hmp_noise = 0.0;
        let mut board = Board::new(cfg);
        let mut run = WorkloadRun::new(&wl);
        let mut vals = nominal;
        let apply = |board: &mut Board, v: &[f64; 7]| {
            board.actuate(&Actuation {
                f_big: Some(v[2]),
                f_little: Some(v[3]),
                big_cores: Some(v[0] as usize),
                little_cores: Some(v[1] as usize),
                placement: Some(Placement {
                    threads_big: v[4] as usize,
                    packing_big: v[5],
                    packing_little: v[6],
                }),
            });
        };
        apply(&mut board, &vals);
        let measure = |board: &mut Board, run: &mut WorkloadRun, settle: f64, window: f64| {
            let dt = board.config().dt;
            for _ in 0..(settle / dt) as usize {
                let loads = run.loads();
                let rep = board.step(&loads);
                run.advance(&rep.thread_progress);
            }
            let ib0 = board.instructions(Cluster::Big);
            let il0 = board.instructions(Cluster::Little);
            let t0 = board.time();
            for _ in 0..(window / dt) as usize {
                let loads = run.loads();
                let rep = board.step(&loads);
                run.advance(&rep.thread_progress);
            }
            let span = board.time() - t0;
            let bips_big = (board.instructions(Cluster::Big) - ib0) / span;
            let bips_little = (board.instructions(Cluster::Little) - il0) / span;
            let st = board.state();
            let n_active = run.active_threads();
            let tb = st.placement.threads_big.min(n_active);
            let sc =
                spare_capacity(st.big_cores, tb) - spare_capacity(st.little_cores, n_active - tb);
            [
                ranges.perf.normalize(bips_big + bips_little),
                ranges.p_big.normalize(board.read_power(Cluster::Big)),
                ranges.p_little.normalize(board.read_power(Cluster::Little)),
                ranges.temp.normalize(st.t_hot),
                ranges.perf_little.normalize(bips_little),
                ranges.perf_big.normalize(bips_big),
                ranges.spare_diff.normalize(sc),
            ]
        };
        let before = measure(&mut board, &mut run, 12.0, 5.0);
        vals[j] += steps[j];
        apply(&mut board, &vals);
        let after = measure(&mut board, &mut run, 8.0, 5.0);
        // Normalized input step size.
        let d_norm = match j {
            0 | 1 => ranges.cores.normalize_delta(steps[j]),
            2 => ranges.f_big.normalize_delta(steps[j]),
            3 => ranges.f_little.normalize_delta(steps[j]),
            4 => ranges.threads_big.normalize_delta(steps[j]),
            _ => ranges.packing.normalize_delta(steps[j]),
        };
        for i in 0..7 {
            gains[(i, j)] = (after[i] - before[i]) / d_norm;
        }
    }
    gains
}

fn concat(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let mut row = x.clone();
            row.extend_from_slice(y);
            row
        })
        .collect()
}

/// Aligns excitation data with the strictly proper ARX convention.
///
/// In the log, `y[k]` is measured over the same interval during which
/// `u[k]` was applied, but the regression's `u(t−1)` slot must hold the
/// input that *generated* `y(t)` — which is `u[t]`, not `u[t−1]`. Shifting
/// the input series back by one sample makes the identified one-step delay
/// equal the real controller-period delay (command at invocation `t`,
/// effect visible at invocation `t+1`).
fn align_for_arx(u: &[Vec<f64>], y: &[Vec<f64>]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let n = u.len();
    if n < 2 {
        return (u.to_vec(), y.to_vec());
    }
    let u_fit = u[1..].to_vec();
    let y_fit = y[..n - 1].to_vec();
    (u_fit, y_fit)
}

/// Builds the full design from scratch (characterize → identify →
/// synthesize).
///
/// # Errors
///
/// Propagates identification failures (insufficient excitation) and
/// synthesis failures (infeasible bounds/guardbands, per the paper's
/// description of MATLAB failing to build the controller).
pub fn build_design(opts: &DesignOptions) -> Result<Design> {
    opts.guardband.validate()?;
    let data = collect_excitation(opts);
    if data.len() < 100 {
        return Err(Error::NoSolution {
            op: "build_design",
            why: "insufficient excitation data collected",
        });
    }
    // Local DC gains from step tests, used to calibrate every model.
    let dc = measure_dc_gains(opts);
    let pick = |rows: &[usize], cols: &[usize]| {
        let mut m = yukta_linalg::Mat::zeros(rows.len(), cols.len());
        for (i, &r) in rows.iter().enumerate() {
            for (j, &c) in cols.iter().enumerate() {
                m[(i, j)] = dc[(r, c)];
            }
        }
        m
    };
    let sysid_cfg = SysIdConfig {
        na: 2,
        nb: 2,
        nc: 0,
        plr_iters: 0,
        // A whiff of ridge keeps the joint (monolithic) regression well
        // posed: the spare-capacity output is piecewise-linear in the
        // inputs and can be exactly collinear with them over a run.
        ridge: 1e-4,
    };
    // Full models (with external signals).
    let u_hw_full = concat(&data.u_hw, &data.u_os);
    let (u_hwf, y_hwf) = align_for_arx(&u_hw_full, &data.y_hw);
    let mut hw_id = fit_arx(&u_hwf, &y_hwf, sysid_cfg)?
        .stabilized(0.97)?
        .with_sample_period(0.5)?;
    hw_id.sys = calibrate_dc_gains(&hw_id.sys, &pick(&[0, 1, 2, 3], &[0, 1, 2, 3, 4, 5, 6]))?;
    let u_os_full = concat(&data.u_os, &data.u_hw);
    let (u_osf, y_osf) = align_for_arx(&u_os_full, &data.y_os);
    let mut os_id = fit_arx(&u_osf, &y_osf, sysid_cfg)?
        .stabilized(0.97)?
        .with_sample_period(0.5)?;
    os_id.sys = calibrate_dc_gains(&os_id.sys, &pick(&[4, 5, 6], &[4, 5, 6, 0, 1, 2, 3]))?;
    // Guardband auto-tuning: re-fit each layer on the leading portion of
    // the record and measure the one-step prediction residual on the
    // held-out tail. The residual bounds how wrong the production model
    // (fitted on *all* data, so at least as good) can be on data it has
    // never seen; the uncertainty radius shrinks to a margin above it.
    let (hw_residual, os_residual, hw_uncertainty, os_uncertainty) = if opts.guardband.auto {
        let tune = |u: &[Vec<f64>], y: &[Vec<f64>]| -> Result<f64> {
            let split = ((1.0 - opts.guardband.holdout_frac) * u.len() as f64) as usize;
            let train = fit_arx(&u[..split], &y[..split], sysid_cfg)?;
            validation_residual(&u[split..], &y[split..], &train)
        };
        let (hw_r, os_r) = (tune(&u_hwf, &y_hwf)?, tune(&u_osf, &y_osf)?);
        (
            hw_r,
            os_r,
            opts.guardband.radius(hw_r),
            opts.guardband.radius(os_r),
        )
    } else {
        (f64::NAN, f64::NAN, opts.hw_uncertainty, opts.os_uncertainty)
    };
    // Solo and joint models for the LQG baselines.
    let (u_hws, y_hws) = align_for_arx(&data.u_hw, &data.y_hw);
    let mut hw_solo = fit_arx(&u_hws, &y_hws, sysid_cfg)?
        .stabilized(0.97)?
        .with_sample_period(0.5)?;
    hw_solo.sys = calibrate_dc_gains(&hw_solo.sys, &pick(&[0, 1, 2, 3], &[0, 1, 2, 3]))?;
    let (u_oss, y_oss) = align_for_arx(&data.u_os, &data.y_os);
    let mut os_solo = fit_arx(&u_oss, &y_oss, sysid_cfg)?
        .stabilized(0.97)?
        .with_sample_period(0.5)?;
    os_solo.sys = calibrate_dc_gains(&os_solo.sys, &pick(&[4, 5, 6], &[4, 5, 6]))?;
    let y_mono = concat(&data.y_hw, &data.y_os);
    let (u_mono, y_monof) = align_for_arx(&u_hw_full, &y_mono);
    let mut mono = fit_arx(&u_mono, &y_monof, sysid_cfg)?
        .stabilized(0.97)?
        .with_sample_period(0.5)?;
    mono.sys = calibrate_dc_gains(
        &mono.sys,
        &pick(&[0, 1, 2, 3, 4, 5, 6], &[0, 1, 2, 3, 4, 5, 6]),
    )?;

    // SSV synthesis per layer.
    let hw_spec = SsvSpec {
        ts: 0.5,
        output_bounds: opts.hw_bounds.to_vec(),
        input_weights: opts.hw_weights.to_vec(),
        n_ext: 3,
        uncertainty: hw_uncertainty,
        noise_eps: 0.05,
        prefilter_tau: None,
        unc_tau: None,
        sensor_tau: None,
        perf_dc_boost: opts.perf_dc_boost,
        perf_corner: opts.perf_corner,
        effort_scale: opts.effort_scale,
    };
    let dk = DkOptions {
        max_iters: 2,
        gamma_iters: 14,
        n_freq: 25,
        ..DkOptions::default()
    };
    let hw_ssv = synthesize_ssv(&hw_id.sys, &hw_spec, dk)?;
    let os_spec = SsvSpec {
        ts: 0.5,
        output_bounds: opts.os_bounds.to_vec(),
        input_weights: opts.os_weights.to_vec(),
        n_ext: 4,
        uncertainty: os_uncertainty,
        noise_eps: 0.05,
        prefilter_tau: None,
        unc_tau: None,
        sensor_tau: None,
        perf_dc_boost: opts.perf_dc_boost,
        perf_corner: opts.perf_corner,
        effort_scale: opts.effort_scale,
    };
    let os_ssv = synthesize_ssv(&os_id.sys, &os_spec, dk)?;
    Ok(Design {
        hw_ssv,
        os_ssv,
        hw_model_full: hw_id.sys,
        os_model_full: os_id.sys,
        hw_model_solo: hw_solo.sys,
        os_model_solo: os_solo.sys,
        mono_model: mono.sys,
        hw_fit: hw_id.fit,
        hw_uncertainty_used: hw_uncertainty,
        os_uncertainty_used: os_uncertainty,
        hw_residual,
        os_residual,
        os_fit: os_id.fit,
        options: opts.clone(),
    })
}

static DEFAULT_DESIGN: OnceLock<Design> = OnceLock::new();

/// Designs keyed by excitation seed, for experiments that thread their own
/// seed through the whole pipeline (identification excitation included)
/// rather than riding on the process-global default.
static SEEDED_DESIGNS: OnceLock<std::sync::Mutex<std::collections::HashMap<u64, Design>>> =
    OnceLock::new();

/// The design whose identification excitation (and every downstream
/// artifact) derives from `seed`. Results are cached process-wide, and the
/// default seed shares [`default_design`]'s cache, so repeated calls are
/// free and bit-identical — the property crash-recovery replay relies on.
///
/// # Errors
///
/// Propagates [`build_design`] failures for seeds whose excitation record
/// turns out too poor to identify (practically: never for realistic
/// seeds).
pub fn design_for_seed(seed: u64) -> Result<Design> {
    if seed == DesignOptions::default().seed {
        return Ok(default_design().clone());
    }
    let cache =
        SEEDED_DESIGNS.get_or_init(|| std::sync::Mutex::new(std::collections::HashMap::new()));
    if let Some(d) = cache.lock().expect("design cache poisoned").get(&seed) {
        return Ok(d.clone());
    }
    let d = build_design(&DesignOptions {
        seed,
        ..Default::default()
    })?;
    cache
        .lock()
        .expect("design cache poisoned")
        .insert(seed, d.clone());
    Ok(d)
}

/// The cached default design (Tables II/III parameters). Built once per
/// process; deterministic.
///
/// # Panics
///
/// Panics if the design pipeline fails — that is a build-breaking bug, not
/// a runtime condition.
pub fn default_design() -> &'static Design {
    DEFAULT_DESIGN.get_or_init(|| {
        build_design(&DesignOptions::default()).expect("default Yukta design pipeline failed")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excitation_produces_rich_data() {
        let opts = DesignOptions {
            excitation_secs: 20.0,
            ..Default::default()
        };
        let data = collect_excitation(&opts);
        assert!(data.len() > 100, "samples {}", data.len());
        // Inputs actually move (random walk).
        let f_col: Vec<f64> = data.u_hw.iter().map(|r| r[2]).collect();
        let min = f_col.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = f_col.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.3, "f_big excitation span {}", max - min);
        // Outputs are normalized and finite.
        for row in &data.y_hw {
            for v in row {
                assert!(v.is_finite() && v.abs() <= 2.0, "normalized output {v}");
            }
        }
    }

    #[test]
    fn default_design_builds_and_is_sane() {
        let d = default_design();
        // Controller shapes per Tables II/III, plus the deployed
        // observer form's applied-input port (one per actuator).
        assert_eq!(d.hw_ssv.controller.n_inputs(), 11);
        assert_eq!(d.hw_ssv.controller.n_outputs(), 4);
        assert_eq!(d.os_ssv.controller.n_inputs(), 10);
        assert_eq!(d.os_ssv.controller.n_outputs(), 3);
        assert!(d.hw_ssv.controller.is_stable().unwrap());
        assert!(d.os_ssv.controller.is_stable().unwrap());
        // Identification succeeded meaningfully on at least the power
        // outputs (index 1, 2 of the HW model).
        assert!(d.hw_fit[1] > 0.3, "big power fit too poor: {:?}", d.hw_fit);
        // The models have the right shapes for the LQG baselines.
        assert_eq!(d.hw_model_solo.n_inputs(), 4);
        assert_eq!(d.os_model_solo.n_inputs(), 3);
        assert_eq!(d.mono_model.n_inputs(), 7);
        assert_eq!(d.mono_model.n_outputs(), 7);
    }

    #[test]
    fn design_is_deterministic() {
        let opts = DesignOptions {
            excitation_secs: 15.0,
            ..Default::default()
        };
        let d1 = collect_excitation(&opts);
        let d2 = collect_excitation(&opts);
        assert_eq!(d1.u_hw, d2.u_hw);
        assert_eq!(d1.y_hw, d2.y_hw);
    }
}
