//! Property-based tests for the workload engine's bookkeeping invariants.

use proptest::prelude::*;
use yukta_workloads::app::{App, PhaseSpec, Suite, Workload, WorkloadRun};

fn app_strategy() -> impl Strategy<Value = App> {
    (
        1usize..=4, // phases
        1usize..=8, // slots
        prop::collection::vec((1usize..=8, 1.0..50.0f64, 0.0..1.0f64), 1..=4),
    )
        .prop_map(|(n_phases, slots, specs)| App {
            name: "prop".into(),
            suite: Suite::Training,
            slots,
            phases: specs
                .into_iter()
                .take(n_phases)
                .map(|(threads, work, mi)| PhaseSpec {
                    name: "p".into(),
                    threads: threads.min(slots),
                    work_gi: work,
                    mem_intensity: mi,
                    ipc_big: 1.0,
                    ipc_little: 1.0,
                })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn progress_fraction_monotone_and_bounded(app in app_strategy(), chunk in 0.1..5.0f64) {
        let wl = Workload::single(app);
        let mut run = WorkloadRun::new(&wl);
        let slots = wl.n_slots();
        let mut last = run.progress_fraction();
        prop_assert!((0.0..=1.0).contains(&last));
        // Enough iterations to drain the pool even at the smallest chunk
        // with a single active thread, plus slack for phase boundaries.
        let budget = (wl.total_work() / chunk).ceil() as usize + 16;
        for _ in 0..budget {
            // Feed progress to the active threads only, as the board does.
            let loads = run.loads();
            let progress: Vec<f64> = loads
                .iter()
                .map(|l| if l.active { chunk } else { 0.0 })
                .collect();
            prop_assert_eq!(progress.len(), slots);
            run.advance(&progress);
            let now = run.progress_fraction();
            prop_assert!(now >= last - 1e-9, "progress went backwards");
            prop_assert!((0.0..=1.0).contains(&now));
            last = now;
            if run.is_done() {
                break;
            }
        }
        prop_assert!(run.is_done(), "workload never completed");
        prop_assert!((run.progress_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn active_threads_respect_phase_spec(app in app_strategy()) {
        let wl = Workload::single(app.clone());
        let mut run = WorkloadRun::new(&wl);
        for _ in 0..100 {
            let active = run.active_threads();
            if run.is_done() {
                prop_assert_eq!(active, 0);
                break;
            }
            let max_threads = app.phases.iter().map(|p| p.threads).max().unwrap_or(0);
            prop_assert!(active <= max_threads);
            prop_assert!(active >= 1);
            let loads = run.loads();
            let progress: Vec<f64> = loads.iter().map(|l| if l.active { 1.0 } else { 0.0 }).collect();
            run.advance(&progress);
        }
    }

    #[test]
    fn scaling_preserves_total_rate(app in app_strategy(), threads in 1usize..=8) {
        let scaled = app.scaled_to(threads);
        prop_assert_eq!(scaled.slots, threads);
        let ratio = threads as f64 / app.slots as f64;
        prop_assert!((scaled.total_work() - app.total_work() * ratio).abs() < 1e-9);
        prop_assert_eq!(scaled.phases.len(), app.phases.len());
    }

    #[test]
    fn inactive_slots_ignore_progress(app in app_strategy()) {
        // Progress credited to inactive slots must not advance the run.
        let wl = Workload::single(app);
        let mut run = WorkloadRun::new(&wl);
        let loads = run.loads();
        let before = run.progress_fraction();
        let progress: Vec<f64> = loads.iter().map(|l| if l.active { 0.0 } else { 100.0 }).collect();
        run.advance(&progress);
        // NOTE: the engine pools work per app; crediting inactive slots of
        // the *same* app still counts (they share the pool), so restrict
        // the check to fully-idle runs.
        if loads.iter().all(|l| !l.active) {
            prop_assert!((run.progress_fraction() - before).abs() < 1e-9);
        }
    }
}
