//! Property-based tests for the open-loop traffic generator: the arrival
//! process is a pure function of `(seed, pattern, rates)` — bit-exact
//! across instantiations and isolated from every other RNG stream in the
//! system (the fault injector's plan RNG, other traffic instances), so a
//! serving run replays and recovers bit-identically.

use proptest::prelude::*;
use yukta_workloads::{Traffic, TrafficConfig, TrafficPattern};

fn pattern_strategy() -> impl Strategy<Value = TrafficPattern> {
    prop_oneof![
        Just(TrafficPattern::Constant),
        Just(TrafficPattern::diurnal()),
        Just(TrafficPattern::bursty()),
        Just(TrafficPattern::flash_crowd()),
    ]
}

fn config_strategy() -> impl Strategy<Value = TrafficConfig> {
    (
        pattern_strategy(),
        1.0..200.0f64,  // base rate (rps)
        0.2..2.5f64,    // load factor
        0u64..u64::MAX, // seed
    )
        .prop_map(
            |(pattern, base_rate_rps, load_factor, seed)| TrafficConfig {
                pattern,
                base_rate_rps,
                load_factor,
                seed,
                ..Default::default()
            },
        )
}

/// Ticks `n` controller periods and returns the full request trace.
fn trace(cfg: TrafficConfig, n: usize) -> Vec<(u64, u64)> {
    let mut t = Traffic::new(cfg);
    let mut out = Vec::new();
    for _ in 0..n {
        for r in t.tick(0.5) {
            out.push((r.arrival_s.to_bits(), r.demand_gi.to_bits()));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn same_seed_and_pattern_bit_reproduce_the_trace(cfg in config_strategy()) {
        prop_assert!(cfg.validate().is_ok());
        prop_assert_eq!(trace(cfg, 120), trace(cfg, 120));
    }

    #[test]
    fn traffic_streams_are_isolated_from_each_other(
        cfg in config_strategy(),
        other_seed in 0u64..u64::MAX,
    ) {
        // Interleaving draws from an unrelated generator (standing in for
        // the fault injector's plan RNG or a second tenant) must not
        // perturb this stream: each `Traffic` owns a private salted RNG.
        let solo = trace(cfg, 120);
        let mut subject = Traffic::new(cfg);
        let mut bystander = Traffic::new(TrafficConfig {
            seed: other_seed,
            ..cfg
        });
        let mut interleaved = Vec::new();
        for _ in 0..120 {
            let _ = bystander.tick(0.5);
            for r in subject.tick(0.5) {
                interleaved.push((r.arrival_s.to_bits(), r.demand_gi.to_bits()));
            }
            let _ = bystander.tick(0.5);
        }
        prop_assert_eq!(solo, interleaved);
    }

    #[test]
    fn arrivals_are_ordered_in_window_and_demands_bounded(cfg in config_strategy()) {
        let mut t = Traffic::new(cfg);
        let mut now = 0.0f64;
        let mut last_arrival = 0.0f64;
        for _ in 0..120 {
            let next = now + 0.5;
            for r in t.tick(0.5) {
                prop_assert!(r.arrival_s >= now - 1e-9, "arrival before tick start");
                prop_assert!(r.arrival_s <= next + 1e-9, "arrival after tick end");
                prop_assert!(r.arrival_s >= last_arrival - 1e-9, "arrivals out of order");
                last_arrival = r.arrival_s;
                prop_assert!(r.demand_gi > 0.0);
                prop_assert!(r.demand_gi <= cfg.service_cap_gi + 1e-12);
            }
            now = next;
        }
    }
}
