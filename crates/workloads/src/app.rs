//! Application models and their runtime engine.
//!
//! A [`Workload`] is one or more applications, each a sequence of
//! [`PhaseSpec`]s: a thread count, an amount of work in giga-instructions,
//! and execution characteristics (memory-boundedness and per-cluster IPC
//! factors). The [`WorkloadRun`] engine turns these into per-step
//! [`ThreadLoad`]s for the board and consumes the board's progress report,
//! exactly the role the real binaries played on the XU3.

use serde::{Deserialize, Serialize};
use yukta_board::ThreadLoad;

/// Which benchmark suite an application models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// PARSEC multithreaded benchmarks (native inputs in the paper).
    Parsec,
    /// SPEC CPU2006 integer codes (8 copies, train inputs).
    SpecInt,
    /// SPEC CPU2006 floating-point codes.
    SpecFp,
    /// The disjoint training set used for system identification.
    Training,
    /// Heterogeneous mixes (Section VI-C).
    Mix,
}

/// One phase of an application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Human-readable phase name ("serial", "parallel", …).
    pub name: String,
    /// Active threads during the phase.
    pub threads: usize,
    /// Total work in giga-instructions, shared by the phase's threads.
    pub work_gi: f64,
    /// Memory-boundedness in `[0, 1]`.
    pub mem_intensity: f64,
    /// IPC multiplier on a big core (captures exploitable ILP).
    pub ipc_big: f64,
    /// IPC multiplier on a little core.
    pub ipc_little: f64,
}

/// One modeled application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct App {
    /// Benchmark name ("blackscholes", "mcf", …).
    pub name: String,
    /// Suite the benchmark belongs to.
    pub suite: Suite,
    /// Thread slots the application owns (its maximum parallelism).
    pub slots: usize,
    /// Phase sequence.
    pub phases: Vec<PhaseSpec>,
}

impl App {
    /// Total work across all phases (giga-instructions).
    pub fn total_work(&self) -> f64 {
        self.phases.iter().map(|p| p.work_gi).sum()
    }

    /// A copy scaled to `threads` parallelism with proportionally reduced
    /// work — how the paper builds 4-thread mix components from 8-thread
    /// benchmarks.
    pub fn scaled_to(&self, threads: usize) -> App {
        assert!(threads >= 1, "an app needs at least one thread");
        let ratio = threads as f64 / self.slots as f64;
        App {
            name: self.name.clone(),
            suite: self.suite,
            slots: threads,
            phases: self
                .phases
                .iter()
                .map(|p| PhaseSpec {
                    name: p.name.clone(),
                    threads: p.threads.min(threads).max(1),
                    work_gi: p.work_gi * ratio,
                    mem_intensity: p.mem_intensity,
                    ipc_big: p.ipc_big,
                    ipc_little: p.ipc_little,
                })
                .collect(),
        }
    }
}

/// A runnable workload: one application, or several side by side (a mix).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Workload name (the label used in the paper's figures).
    pub name: String,
    /// Component applications.
    pub apps: Vec<App>,
}

impl Workload {
    /// A workload consisting of a single application.
    pub fn single(app: App) -> Self {
        Workload {
            name: app.name.clone(),
            apps: vec![app],
        }
    }

    /// A named mix of applications.
    pub fn mix(name: &str, apps: Vec<App>) -> Self {
        Workload {
            name: name.to_string(),
            apps,
        }
    }

    /// Total thread slots across all components.
    pub fn n_slots(&self) -> usize {
        self.apps.iter().map(|a| a.slots).sum()
    }

    /// Total work across all components (giga-instructions).
    pub fn total_work(&self) -> f64 {
        self.apps.iter().map(App::total_work).sum()
    }
}

/// Execution state of one component application.
#[derive(Debug, Clone, PartialEq)]
struct AppRun {
    phase: usize,
    remaining_gi: f64,
}

/// The runtime engine driving a [`Workload`] against the board.
///
/// # Examples
///
/// ```
/// use yukta_workloads::app::{App, PhaseSpec, Suite, Workload, WorkloadRun};
///
/// let app = App {
///     name: "toy".into(),
///     suite: Suite::Training,
///     slots: 2,
///     phases: vec![PhaseSpec {
///         name: "parallel".into(),
///         threads: 2,
///         work_gi: 1.0,
///         mem_intensity: 0.2,
///         ipc_big: 1.0,
///         ipc_little: 1.0,
///     }],
/// };
/// let mut run = WorkloadRun::new(&Workload::single(app));
/// assert_eq!(run.loads().len(), 2);
/// run.advance(&[0.6, 0.6]); // 1.2 GI retired ≥ 1.0 GI of work
/// assert!(run.is_done());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadRun {
    workload: Workload,
    runs: Vec<AppRun>,
}

impl WorkloadRun {
    /// Starts the workload from its first phase.
    pub fn new(workload: &Workload) -> Self {
        let runs = workload
            .apps
            .iter()
            .map(|a| AppRun {
                phase: 0,
                remaining_gi: a.phases.first().map_or(0.0, |p| p.work_gi),
            })
            .collect();
        WorkloadRun {
            workload: workload.clone(),
            runs,
        }
    }

    /// The workload being run.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Current per-slot thread loads, one entry per slot across all
    /// components (component order, then slot order).
    pub fn loads(&self) -> Vec<ThreadLoad> {
        let mut out = Vec::with_capacity(self.workload.n_slots());
        for (app, run) in self.workload.apps.iter().zip(&self.runs) {
            let phase = app.phases.get(run.phase);
            for slot in 0..app.slots {
                match phase {
                    Some(p) if slot < p.threads && run.remaining_gi > 0.0 => out.push(ThreadLoad {
                        active: true,
                        mem_intensity: p.mem_intensity,
                        ipc_factor_big: p.ipc_big,
                        ipc_factor_little: p.ipc_little,
                    }),
                    _ => out.push(ThreadLoad::idle()),
                }
            }
        }
        out
    }

    /// Consumes the board's per-slot progress (giga-instructions retired)
    /// and advances phases as their work pools drain.
    ///
    /// # Panics
    ///
    /// Panics if `progress` does not have one entry per slot.
    pub fn advance(&mut self, progress: &[f64]) {
        assert_eq!(progress.len(), self.workload.n_slots(), "slot count");
        let mut base = 0;
        for (app, run) in self.workload.apps.iter().zip(self.runs.iter_mut()) {
            let done: f64 = progress[base..base + app.slots].iter().sum();
            base += app.slots;
            if run.phase >= app.phases.len() {
                continue;
            }
            run.remaining_gi -= done;
            while run.remaining_gi <= 0.0 && run.phase < app.phases.len() {
                let carry = -run.remaining_gi;
                run.phase += 1;
                run.remaining_gi = app
                    .phases
                    .get(run.phase)
                    .map_or(0.0, |p| (p.work_gi - carry).max(0.0));
            }
        }
    }

    /// Whether every component has exhausted all its phases.
    pub fn is_done(&self) -> bool {
        self.workload.apps.iter().zip(&self.runs).all(|(a, r)| {
            r.phase >= a.phases.len() || (r.phase == a.phases.len() - 1 && r.remaining_gi <= 0.0)
        })
    }

    /// Fraction of total work completed, in `[0, 1]`.
    pub fn progress_fraction(&self) -> f64 {
        let total = self.workload.total_work();
        if total <= 0.0 {
            return 1.0;
        }
        let remaining: f64 = self
            .workload
            .apps
            .iter()
            .zip(&self.runs)
            .map(|(a, r)| {
                let future: f64 = a.phases.iter().skip(r.phase + 1).map(|p| p.work_gi).sum();
                future + r.remaining_gi.max(0.0)
            })
            .sum();
        (1.0 - remaining / total).clamp(0.0, 1.0)
    }

    /// Number of currently active threads across all components — the
    /// signal the OS layer watches.
    pub fn active_threads(&self) -> usize {
        self.loads().iter().filter(|l| l.active).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_phase_app() -> App {
        App {
            name: "t".into(),
            suite: Suite::Parsec,
            slots: 4,
            phases: vec![
                PhaseSpec {
                    name: "serial".into(),
                    threads: 1,
                    work_gi: 1.0,
                    mem_intensity: 0.1,
                    ipc_big: 1.0,
                    ipc_little: 1.0,
                },
                PhaseSpec {
                    name: "parallel".into(),
                    threads: 4,
                    work_gi: 4.0,
                    mem_intensity: 0.3,
                    ipc_big: 1.0,
                    ipc_little: 1.0,
                },
            ],
        }
    }

    #[test]
    fn serial_phase_activates_one_thread() {
        let run = WorkloadRun::new(&Workload::single(two_phase_app()));
        let loads = run.loads();
        assert_eq!(loads.len(), 4);
        assert_eq!(loads.iter().filter(|l| l.active).count(), 1);
    }

    #[test]
    fn phase_transition_with_carryover() {
        let mut run = WorkloadRun::new(&Workload::single(two_phase_app()));
        // Retire 1.5 GI on thread 0: finishes serial (1.0) and carries 0.5
        // into the parallel phase.
        run.advance(&[1.5, 0.0, 0.0, 0.0]);
        assert_eq!(run.active_threads(), 4);
        assert!((run.progress_fraction() - 1.5 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn completion() {
        let mut run = WorkloadRun::new(&Workload::single(two_phase_app()));
        run.advance(&[1.0, 0.0, 0.0, 0.0]);
        assert!(!run.is_done());
        run.advance(&[1.0, 1.0, 1.0, 1.0]);
        assert!(run.is_done());
        assert_eq!(run.active_threads(), 0);
        assert!((run.progress_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mix_components_progress_independently() {
        let a = two_phase_app();
        let mut b = two_phase_app();
        b.name = "u".into();
        let mix = Workload::mix("ab", vec![a, b]);
        let mut run = WorkloadRun::new(&mix);
        assert_eq!(run.loads().len(), 8);
        // Finish only component a.
        run.advance(&[5.0, 5.0, 5.0, 5.0, 0.0, 0.0, 0.0, 0.0]);
        assert!(!run.is_done());
        let loads = run.loads();
        assert!(loads[..4].iter().all(|l| !l.active));
        assert_eq!(loads[4..].iter().filter(|l| l.active).count(), 1);
    }

    #[test]
    fn scaled_app_preserves_rate_shape() {
        let app = two_phase_app();
        let half = app.scaled_to(2);
        assert_eq!(half.slots, 2);
        assert!((half.total_work() - app.total_work() / 2.0).abs() < 1e-9);
        assert_eq!(half.phases[1].threads, 2);
        assert_eq!(half.phases[0].threads, 1);
    }

    #[test]
    fn loads_reflect_phase_characteristics() {
        let mut run = WorkloadRun::new(&Workload::single(two_phase_app()));
        assert!((run.loads()[0].mem_intensity - 0.1).abs() < 1e-12);
        run.advance(&[1.0, 0.0, 0.0, 0.0]);
        assert!((run.loads()[0].mem_intensity - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "slot count")]
    fn wrong_progress_length_panics() {
        let mut run = WorkloadRun::new(&Workload::single(two_phase_app()));
        run.advance(&[1.0]);
    }
}
