//! # yukta-workloads
//!
//! Phase-structured synthetic models of the applications the paper
//! evaluates: the PARSEC and SPEC2006 workloads, the disjoint training
//! set used for system identification, and the heterogeneous mixes of
//! Section VI-C.
//!
//! The controllers in the paper never see instructions — they see BIPS,
//! power, temperature, and thread counts. Each [`app::App`] therefore
//! models exactly what shapes those signals: how much work each phase
//! has (giga-instructions), how many threads it runs, how memory-bound it
//! is, and how much ILP the big cores can extract from it.
//!
//! ```
//! use yukta_workloads::{app::WorkloadRun, catalog};
//!
//! let wl = catalog::parsec::blackscholes();
//! let mut run = WorkloadRun::new(&wl);
//! assert_eq!(run.active_threads(), 1); // serial prologue
//! ```

pub mod app;
pub mod catalog;
pub mod traffic;

pub use app::{App, PhaseSpec, Suite, Workload, WorkloadRun};
pub use traffic::{Request, Traffic, TrafficConfig, TrafficPattern};
