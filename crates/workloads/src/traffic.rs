//! Seeded open-loop arrival processes for request serving.
//!
//! The paper's evaluation drives Yukta with closed-loop batch apps, but
//! the north-star deployment serves open-loop traffic: requests arrive
//! whether or not the machine keeps up. This module generates those
//! arrivals — constant, diurnal, bursty (two-state MMPP), and
//! flash-crowd patterns with heavy-tailed per-request service demands —
//! from a dedicated seeded RNG so the stream composes with (and never
//! perturbs) the fault injector's RNG stream.
//!
//! Determinism contract: a [`Traffic`] owns its own `StdRng` seeded
//! from `TrafficConfig::seed`, draws from nothing else, and advances
//! only inside [`Traffic::tick`]. Same config ⇒ bit-identical request
//! trace, regardless of what any other generator in the process does.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Seed-domain separator: keeps the traffic stream decorrelated from the
/// fault injector (which XORs its own constant into the shared run seed).
const TRAFFIC_SEED_SALT: u64 = 0x7452_4146_4649_4331; // "TRAFFIC1"

/// Shape of the offered-load curve over time. Each variant multiplies
/// the configured base rate; shapes average roughly 1.0 over their
/// period so `base_rate_rps × load_factor` stays the mean offered load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Fixed rate: the M/G/1-style baseline.
    Constant,
    /// Sinusoidal day/night swing: `1 + amplitude·sin(2πt/period)`.
    Diurnal {
        /// Full period of the swing (s).
        period_s: f64,
        /// Peak-to-mean excursion in `[0, 1)`.
        amplitude: f64,
    },
    /// Two-state Markov-modulated Poisson process: the rate alternates
    /// between `low_ratio` and `high_ratio` with exponentially
    /// distributed dwell times.
    Bursty {
        /// Rate multiplier in the quiet state.
        low_ratio: f64,
        /// Rate multiplier in the burst state.
        high_ratio: f64,
        /// Mean dwell time in each state (s).
        mean_dwell_s: f64,
    },
    /// Baseline load with one ramp-up/hold/ramp-down spike — the
    /// overload event the shedding machinery exists for.
    FlashCrowd {
        /// When the crowd starts arriving (s).
        start_s: f64,
        /// Linear ramp duration up to (and later down from) the peak (s).
        ramp_s: f64,
        /// Rate multiplier at the peak.
        peak_ratio: f64,
        /// How long the peak holds (s).
        hold_s: f64,
    },
}

impl TrafficPattern {
    /// Canonical diurnal pattern: 200 s period, ±40 % swing (compressed
    /// day, sized so a default run sees several periods).
    pub fn diurnal() -> Self {
        TrafficPattern::Diurnal {
            period_s: 200.0,
            amplitude: 0.4,
        }
    }

    /// Canonical MMPP burst pattern: 0.3×/1.7× with 10 s mean dwell.
    pub fn bursty() -> Self {
        TrafficPattern::Bursty {
            low_ratio: 0.3,
            high_ratio: 1.7,
            mean_dwell_s: 10.0,
        }
    }

    /// Canonical flash crowd: 3× peak arriving at t=20 s, 5 s ramps,
    /// 20 s hold.
    pub fn flash_crowd() -> Self {
        TrafficPattern::FlashCrowd {
            start_s: 20.0,
            ramp_s: 5.0,
            peak_ratio: 3.0,
            hold_s: 20.0,
        }
    }

    /// Stable label for benchmark tables and result JSON.
    pub fn name(&self) -> &'static str {
        match self {
            TrafficPattern::Constant => "constant",
            TrafficPattern::Diurnal { .. } => "diurnal",
            TrafficPattern::Bursty { .. } => "bursty",
            TrafficPattern::FlashCrowd { .. } => "flash_crowd",
        }
    }
}

/// Full specification of one open-loop traffic stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Offered-load shape over time.
    pub pattern: TrafficPattern,
    /// Mean arrival rate at `load_factor = 1.0` (requests/s).
    pub base_rate_rps: f64,
    /// Load scaling knob: the campaign sweeps this to trace the
    /// SLO-violation envelope.
    pub load_factor: f64,
    /// Seed of the traffic generator's private RNG stream.
    pub seed: u64,
    /// Mean per-request service demand (giga-instructions).
    pub service_mean_gi: f64,
    /// Pareto tail index of the service-demand distribution (> 1 so the
    /// mean exists).
    pub service_alpha: f64,
    /// Hard cap on a single request's demand (giga-instructions) — keeps
    /// the heavy tail bounded, as any real request timeout would.
    pub service_cap_gi: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            pattern: TrafficPattern::Constant,
            base_rate_rps: 40.0,
            load_factor: 1.0,
            seed: 7,
            service_mean_gi: 0.02,
            service_alpha: 1.5,
            service_cap_gi: 0.5,
        }
    }
}

impl TrafficConfig {
    /// Rejects non-finite, non-positive, or unstable parameters. The
    /// caller (the runtime's serving spec) wraps the message into its
    /// typed error.
    pub fn validate(&self) -> Result<(), String> {
        fn pos(name: &str, v: f64) -> Result<(), String> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("{name} must be finite and > 0, got {v}"))
            }
        }
        pos("base_rate_rps", self.base_rate_rps)?;
        pos("load_factor", self.load_factor)?;
        pos("service_mean_gi", self.service_mean_gi)?;
        pos("service_cap_gi", self.service_cap_gi)?;
        if !(self.service_alpha.is_finite() && self.service_alpha > 1.0) {
            return Err(format!(
                "service_alpha must be finite and > 1 (mean must exist), got {}",
                self.service_alpha
            ));
        }
        if self.service_cap_gi < self.service_mean_gi {
            return Err(format!(
                "service_cap_gi ({}) must be >= service_mean_gi ({})",
                self.service_cap_gi, self.service_mean_gi
            ));
        }
        if self.base_rate_rps * self.load_factor > 1.0e4 {
            return Err(format!(
                "offered load {} rps exceeds the 1e4 rps simulation bound",
                self.base_rate_rps * self.load_factor
            ));
        }
        match self.pattern {
            TrafficPattern::Constant => Ok(()),
            TrafficPattern::Diurnal {
                period_s,
                amplitude,
            } => {
                pos("diurnal period_s", period_s)?;
                if amplitude.is_finite() && (0.0..1.0).contains(&amplitude) {
                    Ok(())
                } else {
                    Err(format!(
                        "diurnal amplitude must be in [0, 1), got {amplitude}"
                    ))
                }
            }
            TrafficPattern::Bursty {
                low_ratio,
                high_ratio,
                mean_dwell_s,
            } => {
                pos("bursty low_ratio", low_ratio)?;
                pos("bursty high_ratio", high_ratio)?;
                pos("bursty mean_dwell_s", mean_dwell_s)?;
                if low_ratio <= high_ratio {
                    Ok(())
                } else {
                    Err(format!(
                        "bursty low_ratio ({low_ratio}) must be <= high_ratio ({high_ratio})"
                    ))
                }
            }
            TrafficPattern::FlashCrowd {
                start_s,
                ramp_s,
                peak_ratio,
                hold_s,
            } => {
                if !(start_s.is_finite() && start_s >= 0.0) {
                    return Err(format!("flash_crowd start_s must be >= 0, got {start_s}"));
                }
                pos("flash_crowd ramp_s", ramp_s)?;
                pos("flash_crowd hold_s", hold_s)?;
                if peak_ratio.is_finite() && peak_ratio >= 1.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "flash_crowd peak_ratio must be >= 1, got {peak_ratio}"
                    ))
                }
            }
        }
    }
}

/// One request emitted by the arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Arrival time (s, simulated).
    pub arrival_s: f64,
    /// Service demand (giga-instructions).
    pub demand_gi: f64,
}

/// Deterministic open-loop arrival generator. Owns its RNG; advances
/// only via [`Traffic::tick`].
#[derive(Debug, Clone)]
pub struct Traffic {
    cfg: TrafficConfig,
    rng: StdRng,
    now_s: f64,
    /// MMPP state: currently in the burst (high-rate) state?
    mmpp_high: bool,
    /// MMPP state: time left in the current state (s).
    mmpp_dwell_s: f64,
}

impl Traffic {
    /// A generator at t = 0. The config must already be validated; an
    /// invalid config degrades to clamped behavior rather than panicking.
    pub fn new(cfg: TrafficConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ TRAFFIC_SEED_SALT);
        let (mmpp_high, mmpp_dwell_s) = match cfg.pattern {
            TrafficPattern::Bursty { mean_dwell_s, .. } => {
                (false, exp_draw(&mut rng, mean_dwell_s))
            }
            _ => (false, 0.0),
        };
        Traffic {
            cfg,
            rng,
            now_s: 0.0,
            mmpp_high,
            mmpp_dwell_s,
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &TrafficConfig {
        &self.cfg
    }

    /// Current internal clock (s).
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Deterministic rate multiplier at time `t` for non-MMPP patterns;
    /// MMPP state is advanced separately in [`Traffic::tick`].
    fn shape_at(&self, t: f64) -> f64 {
        match self.cfg.pattern {
            TrafficPattern::Constant => 1.0,
            TrafficPattern::Diurnal {
                period_s,
                amplitude,
            } => 1.0 + amplitude * (std::f64::consts::TAU * t / period_s).sin(),
            TrafficPattern::Bursty {
                low_ratio,
                high_ratio,
                ..
            } => {
                if self.mmpp_high {
                    high_ratio
                } else {
                    low_ratio
                }
            }
            TrafficPattern::FlashCrowd {
                start_s,
                ramp_s,
                peak_ratio,
                hold_s,
            } => {
                let excess = peak_ratio - 1.0;
                let dt = t - start_s;
                if dt < 0.0 || dt > 2.0 * ramp_s + hold_s {
                    1.0
                } else if dt < ramp_s {
                    1.0 + excess * dt / ramp_s
                } else if dt < ramp_s + hold_s {
                    peak_ratio
                } else {
                    1.0 + excess * (2.0 * ramp_s + hold_s - dt) / ramp_s
                }
            }
        }
    }

    /// Generates the arrivals of the next `dt` seconds and advances the
    /// internal clock. Arrivals are sorted by time; each carries a
    /// bounded-Pareto service demand.
    pub fn tick(&mut self, dt: f64) -> Vec<Request> {
        let start = self.now_s;
        if let TrafficPattern::Bursty { mean_dwell_s, .. } = self.cfg.pattern {
            // Advance the modulating chain at tick granularity: flip
            // states until the dwell clock covers this tick. Rate is
            // evaluated at the state holding at the start of the tick.
            self.mmpp_dwell_s -= dt;
            while self.mmpp_dwell_s <= 0.0 {
                self.mmpp_high = !self.mmpp_high;
                self.mmpp_dwell_s += exp_draw(&mut self.rng, mean_dwell_s);
            }
        }
        // Rate for the window, evaluated mid-tick for smooth shapes.
        let shape = self.shape_at(start + 0.5 * dt);
        let lambda = (self.cfg.base_rate_rps * self.cfg.load_factor * shape * dt).max(0.0);
        let n = poisson_draw(&mut self.rng, lambda);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let offset = self.rng.gen_range(0.0..1.0) * dt;
            out.push(Request {
                arrival_s: start + offset,
                demand_gi: self.draw_demand(),
            });
        }
        out.sort_by(|a, b| {
            a.arrival_s
                .partial_cmp(&b.arrival_s)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        self.now_s = start + dt;
        out
    }

    /// Bounded-Pareto service demand: `xm / u^(1/α)` capped, with `xm`
    /// chosen so the *uncapped* Pareto mean equals `service_mean_gi`.
    fn draw_demand(&mut self) -> f64 {
        let alpha = self.cfg.service_alpha;
        let xm = self.cfg.service_mean_gi * (alpha - 1.0) / alpha;
        let u = self.rng.gen_range(0.0..1.0).max(1e-12);
        (xm / u.powf(1.0 / alpha)).min(self.cfg.service_cap_gi)
    }
}

/// Exponential draw with the given mean (inverse CDF).
fn exp_draw(rng: &mut StdRng, mean: f64) -> f64 {
    let u = rng.gen_range(0.0..1.0);
    -mean * (1.0 - u).ln()
}

/// Poisson draw by Knuth's product-of-uniforms method, split into
/// chunks so large `lambda` stays inside f64 range.
fn poisson_draw(rng: &mut StdRng, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let mut remaining = lambda;
    let mut n = 0usize;
    // e^-500 is still representable; chunking keeps the running product
    // away from subnormal underflow for large rates.
    while remaining > 0.0 {
        let step = remaining.min(500.0);
        remaining -= step;
        let threshold = (-step).exp();
        let mut p = 1.0;
        loop {
            p *= rng.gen_range(0.0..1.0);
            if p <= threshold {
                break;
            }
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert_eq!(TrafficConfig::default().validate(), Ok(()));
        for pattern in [
            TrafficPattern::diurnal(),
            TrafficPattern::bursty(),
            TrafficPattern::flash_crowd(),
        ] {
            let cfg = TrafficConfig {
                pattern,
                ..TrafficConfig::default()
            };
            assert_eq!(cfg.validate(), Ok(()), "{}", pattern.name());
        }
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        let base = TrafficConfig::default();
        for cfg in [
            TrafficConfig {
                base_rate_rps: f64::NAN,
                ..base
            },
            TrafficConfig {
                load_factor: -1.0,
                ..base
            },
            TrafficConfig {
                service_alpha: 1.0,
                ..base
            },
            TrafficConfig {
                service_cap_gi: 1e-6,
                ..base
            },
            TrafficConfig {
                base_rate_rps: 9000.0,
                load_factor: 2.0,
                ..base
            },
            TrafficConfig {
                pattern: TrafficPattern::Diurnal {
                    period_s: 0.0,
                    amplitude: 0.4,
                },
                ..base
            },
            TrafficConfig {
                pattern: TrafficPattern::FlashCrowd {
                    start_s: 20.0,
                    ramp_s: 5.0,
                    peak_ratio: 0.5,
                    hold_s: 20.0,
                },
                ..base
            },
        ] {
            assert!(cfg.validate().is_err(), "{cfg:?} should be rejected");
        }
    }

    #[test]
    fn constant_rate_matches_mean_offered_load() {
        let cfg = TrafficConfig {
            base_rate_rps: 50.0,
            load_factor: 1.2,
            ..TrafficConfig::default()
        };
        let mut traffic = Traffic::new(cfg);
        let mut total = 0usize;
        let secs = 200;
        for _ in 0..secs * 2 {
            total += traffic.tick(0.5).len();
        }
        let mean_rps = total as f64 / secs as f64;
        assert!(
            (mean_rps - 60.0).abs() < 6.0,
            "mean offered load {mean_rps} rps, expected ~60"
        );
    }

    #[test]
    fn arrivals_are_sorted_and_inside_the_tick() {
        let mut traffic = Traffic::new(TrafficConfig {
            base_rate_rps: 500.0,
            ..TrafficConfig::default()
        });
        for step in 0..40 {
            let start = 0.5 * step as f64;
            let reqs = traffic.tick(0.5);
            for w in reqs.windows(2) {
                assert!(w[0].arrival_s <= w[1].arrival_s);
            }
            for r in &reqs {
                assert!(r.arrival_s >= start && r.arrival_s < start + 0.5);
                assert!(r.demand_gi > 0.0 && r.demand_gi <= traffic.config().service_cap_gi);
            }
        }
    }

    #[test]
    fn flash_crowd_peaks_above_baseline() {
        let mut traffic = Traffic::new(TrafficConfig {
            pattern: TrafficPattern::flash_crowd(),
            base_rate_rps: 200.0,
            ..TrafficConfig::default()
        });
        let mut baseline = 0usize;
        let mut peak = 0usize;
        for step in 0..80 {
            let t = 0.5 * step as f64;
            let n = traffic.tick(0.5).len();
            if t < 15.0 {
                baseline += n;
            } else if (26.0..39.0).contains(&t) {
                peak += n;
            }
        }
        // Peak window is 13 s at ~3×; baseline window is 15 s at 1×.
        assert!(
            peak as f64 > 2.0 * baseline as f64,
            "flash crowd did not materialize: baseline {baseline}, peak {peak}"
        );
    }

    #[test]
    fn service_demands_are_heavy_tailed_but_capped() {
        let mut traffic = Traffic::new(TrafficConfig {
            base_rate_rps: 1000.0,
            ..TrafficConfig::default()
        });
        let mut demands: Vec<f64> = Vec::new();
        for _ in 0..60 {
            demands.extend(traffic.tick(0.5).iter().map(|r| r.demand_gi));
        }
        demands.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = demands.iter().sum::<f64>() / demands.len() as f64;
        let p99 = demands[(demands.len() * 99) / 100];
        assert!((0.01..0.04).contains(&mean), "mean demand {mean}");
        assert!(p99 > 2.0 * mean, "tail not heavy: p99 {p99}, mean {mean}");
        assert!(demands.last().copied().unwrap() <= 0.5 + 1e-12);
    }
}
