//! The benchmark catalog: phase-structured models of every application the
//! paper evaluates (Section V-A).
//!
//! Evaluation set: 8-threaded PARSEC with native inputs (blackscholes,
//! bodytrack, facesim, fluidanimate, raytrace, x264, canneal,
//! streamcluster) and 8 copies of SPEC2006 with train inputs (h264ref,
//! mcf, omnetpp, gamess, gromacs, dealII). Training set (disjoint, used
//! only for system identification): swaptions, vips, astar, perlbench,
//! milc, namd. Mixes (Section VI-C): blmc, stga, blst, mcga.
//!
//! Work sizes are calibrated so baseline executions take on the order of
//! 100–300 simulated seconds, matching the timescales in Figures 10–11.
//! Memory intensities and IPC factors follow the published behaviour of
//! each code (mcf/canneal memory-bound, gamess/gromacs compute-bound, …).

use crate::app::{App, PhaseSpec, Suite, Workload};

fn phase(
    name: &str,
    threads: usize,
    work_gi: f64,
    mem: f64,
    ipc_big: f64,
    ipc_little: f64,
) -> PhaseSpec {
    PhaseSpec {
        name: name.to_string(),
        threads,
        work_gi,
        mem_intensity: mem,
        ipc_big,
        ipc_little,
    }
}

fn single_phase(
    name: &str,
    suite: Suite,
    work_gi: f64,
    mem: f64,
    ipc_big: f64,
    ipc_little: f64,
) -> App {
    App {
        name: name.to_string(),
        suite,
        slots: 8,
        phases: vec![phase("parallel", 8, work_gi, mem, ipc_big, ipc_little)],
    }
}

/// PARSEC benchmark models.
pub mod parsec {
    use super::*;

    /// blackscholes: a short serial prologue, then a steady 8-thread
    /// parallel pricing phase — the paper's running example (Figures 10,
    /// 11, 15, 17).
    pub fn blackscholes() -> Workload {
        Workload::single(App {
            name: "blackscholes".into(),
            suite: Suite::Parsec,
            slots: 8,
            phases: vec![
                phase("serial-init", 1, 60.0, 0.05, 1.10, 1.00),
                phase("parallel", 8, 1500.0, 0.10, 1.10, 1.00),
            ],
        })
    }

    /// bodytrack: alternating parallel tracking and low-parallelism
    /// reduction stages.
    pub fn bodytrack() -> Workload {
        let mut phases = Vec::new();
        for i in 0..3 {
            phases.push(phase(&format!("track{i}"), 8, 420.0, 0.30, 1.00, 0.95));
            phases.push(phase(&format!("reduce{i}"), 2, 80.0, 0.20, 1.05, 0.95));
        }
        Workload::single(App {
            name: "bodytrack".into(),
            suite: Suite::Parsec,
            slots: 8,
            phases,
        })
    }

    /// facesim: long, moderately memory-bound physics solve.
    pub fn facesim() -> Workload {
        Workload::single(single_phase(
            "facesim",
            Suite::Parsec,
            1800.0,
            0.45,
            1.05,
            0.95,
        ))
    }

    /// fluidanimate: memory-heavy particle simulation.
    pub fn fluidanimate() -> Workload {
        Workload::single(single_phase(
            "fluidanimate",
            Suite::Parsec,
            1600.0,
            0.50,
            0.95,
            0.95,
        ))
    }

    /// raytrace: compute-bound with high ILP.
    pub fn raytrace() -> Workload {
        Workload::single(App {
            name: "raytrace".into(),
            suite: Suite::Parsec,
            slots: 8,
            phases: vec![
                phase("build-bvh", 1, 40.0, 0.30, 1.00, 0.95),
                phase("render", 8, 1700.0, 0.20, 1.15, 1.00),
            ],
        })
    }

    /// x264: pipelined encoder with fluctuating parallelism.
    pub fn x264() -> Workload {
        Workload::single(App {
            name: "x264".into(),
            suite: Suite::Parsec,
            slots: 8,
            phases: vec![
                phase("gop0", 8, 500.0, 0.35, 1.05, 0.95),
                phase("gop1", 6, 300.0, 0.30, 1.05, 0.95),
                phase("gop2", 8, 500.0, 0.35, 1.05, 0.95),
                phase("gop3", 6, 300.0, 0.30, 1.05, 0.95),
            ],
        })
    }

    /// canneal: cache-thrashing simulated annealing (strongly memory-bound).
    pub fn canneal() -> Workload {
        Workload::single(single_phase(
            "canneal",
            Suite::Parsec,
            1100.0,
            0.75,
            0.80,
            0.90,
        ))
    }

    /// streamcluster: streaming clustering, memory-bound.
    pub fn streamcluster() -> Workload {
        Workload::single(single_phase(
            "streamcluster",
            Suite::Parsec,
            1300.0,
            0.65,
            0.85,
            0.90,
        ))
    }

    /// All eight PARSEC evaluation workloads, in the paper's order.
    pub fn all() -> Vec<Workload> {
        vec![
            blackscholes(),
            bodytrack(),
            facesim(),
            fluidanimate(),
            raytrace(),
            x264(),
            canneal(),
            streamcluster(),
        ]
    }
}

/// SPEC CPU2006 models (8 independent copies each).
pub mod spec {
    use super::*;

    /// h264ref: video encoder, mildly memory-bound.
    pub fn h264ref() -> Workload {
        Workload::single(single_phase(
            "h264ref",
            Suite::SpecInt,
            1600.0,
            0.20,
            1.20,
            1.05,
        ))
    }

    /// mcf: the classic memory-bound pointer chaser.
    pub fn mcf() -> Workload {
        Workload::single(single_phase("mcf", Suite::SpecInt, 800.0, 0.90, 0.60, 0.75))
    }

    /// omnetpp: discrete-event simulation, memory-bound.
    pub fn omnetpp() -> Workload {
        Workload::single(single_phase(
            "omnetpp",
            Suite::SpecInt,
            1000.0,
            0.70,
            0.80,
            0.85,
        ))
    }

    /// gamess: quantum chemistry, compute-bound.
    pub fn gamess() -> Workload {
        Workload::single(single_phase(
            "gamess",
            Suite::SpecFp,
            1900.0,
            0.10,
            1.25,
            1.00,
        ))
    }

    /// gromacs: molecular dynamics, compute-bound with high ILP.
    pub fn gromacs() -> Workload {
        Workload::single(single_phase(
            "gromacs",
            Suite::SpecFp,
            1800.0,
            0.15,
            1.30,
            1.00,
        ))
    }

    /// dealII: finite elements, mixed behaviour.
    pub fn deal_ii() -> Workload {
        Workload::single(single_phase(
            "dealII",
            Suite::SpecFp,
            1400.0,
            0.40,
            1.10,
            0.95,
        ))
    }

    /// All six SPEC evaluation workloads, in the paper's order.
    pub fn all() -> Vec<Workload> {
        vec![h264ref(), mcf(), omnetpp(), gamess(), gromacs(), deal_ii()]
    }
}

/// The disjoint training set used for system identification (Section V-A).
pub mod training {
    use super::*;

    /// swaptions (PARSEC): compute-bound Monte Carlo pricing.
    pub fn swaptions() -> Workload {
        Workload::single(single_phase(
            "swaptions",
            Suite::Training,
            1200.0,
            0.10,
            1.15,
            1.00,
        ))
    }

    /// vips (PARSEC): image pipeline, moderate memory traffic.
    pub fn vips() -> Workload {
        Workload::single(single_phase(
            "vips",
            Suite::Training,
            1300.0,
            0.30,
            1.05,
            0.95,
        ))
    }

    /// astar (SPECINT): path-finding, memory-bound.
    pub fn astar() -> Workload {
        Workload::single(single_phase(
            "astar",
            Suite::Training,
            900.0,
            0.60,
            0.80,
            0.85,
        ))
    }

    /// perlbench (SPECINT): interpreter, branchy integer code.
    pub fn perlbench() -> Workload {
        Workload::single(single_phase(
            "perlbench",
            Suite::Training,
            1400.0,
            0.25,
            1.10,
            1.00,
        ))
    }

    /// milc (SPECFP): lattice QCD, memory-bandwidth-bound.
    pub fn milc() -> Workload {
        Workload::single(single_phase(
            "milc",
            Suite::Training,
            900.0,
            0.80,
            0.70,
            0.80,
        ))
    }

    /// namd (SPECFP): molecular dynamics, compute-bound.
    pub fn namd() -> Workload {
        Workload::single(single_phase(
            "namd",
            Suite::Training,
            1800.0,
            0.08,
            1.30,
            1.00,
        ))
    }

    /// The full training set.
    pub fn all() -> Vec<Workload> {
        vec![swaptions(), vips(), astar(), perlbench(), milc(), namd()]
    }
}

/// Heterogeneous mixes (Section VI-C): 4-thread PARSEC + 4-copy SPEC.
pub mod mixes {
    use super::*;

    fn component(w: Workload, threads: usize) -> App {
        w.apps
            .into_iter()
            .next()
            .expect("single app")
            .scaled_to(threads)
    }

    /// blmc: blackscholes + mcf.
    pub fn blmc() -> Workload {
        Workload::mix(
            "blmc",
            vec![
                component(parsec::blackscholes(), 4),
                component(spec::mcf(), 4),
            ],
        )
    }

    /// stga: streamcluster + gamess.
    pub fn stga() -> Workload {
        Workload::mix(
            "stga",
            vec![
                component(parsec::streamcluster(), 4),
                component(spec::gamess(), 4),
            ],
        )
    }

    /// blst: blackscholes + streamcluster.
    pub fn blst() -> Workload {
        Workload::mix(
            "blst",
            vec![
                component(parsec::blackscholes(), 4),
                component(parsec::streamcluster(), 4),
            ],
        )
    }

    /// mcga: mcf + gamess.
    pub fn mcga() -> Workload {
        Workload::mix(
            "mcga",
            vec![component(spec::mcf(), 4), component(spec::gamess(), 4)],
        )
    }

    /// All four mixes, in the paper's order.
    pub fn all() -> Vec<Workload> {
        vec![blmc(), stga(), blst(), mcga()]
    }
}

/// The full homogeneous evaluation set in the paper's Figure 9 order:
/// SPEC first, then PARSEC.
pub fn evaluation_set() -> Vec<Workload> {
    let mut v = spec::all();
    v.extend(parsec::all());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_set_matches_paper() {
        let set = evaluation_set();
        assert_eq!(set.len(), 14);
        let names: Vec<&str> = set.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "h264ref",
                "mcf",
                "omnetpp",
                "gamess",
                "gromacs",
                "dealII",
                "blackscholes",
                "bodytrack",
                "facesim",
                "fluidanimate",
                "raytrace",
                "x264",
                "canneal",
                "streamcluster"
            ]
        );
    }

    #[test]
    fn all_evaluation_workloads_have_8_slots() {
        for w in evaluation_set() {
            assert_eq!(w.n_slots(), 8, "{}", w.name);
            assert!(w.total_work() > 100.0, "{}", w.name);
        }
    }

    #[test]
    fn training_set_is_disjoint_from_evaluation() {
        let eval: Vec<String> = evaluation_set().iter().map(|w| w.name.clone()).collect();
        for t in training::all() {
            assert!(!eval.contains(&t.name), "{} leaked into training", t.name);
        }
        assert_eq!(training::all().len(), 6);
    }

    #[test]
    fn mixes_have_two_components_of_four() {
        for m in mixes::all() {
            assert_eq!(m.apps.len(), 2, "{}", m.name);
            assert_eq!(m.n_slots(), 8, "{}", m.name);
            for a in &m.apps {
                assert_eq!(a.slots, 4);
            }
        }
        let names: Vec<String> = mixes::all().iter().map(|m| m.name.clone()).collect();
        assert_eq!(names, ["blmc", "stga", "blst", "mcga"]);
    }

    #[test]
    fn memory_character_is_differentiated() {
        let mcf = spec::mcf();
        let gamess = spec::gamess();
        assert!(mcf.apps[0].phases[0].mem_intensity > 0.8);
        assert!(gamess.apps[0].phases[0].mem_intensity < 0.2);
    }

    #[test]
    fn blackscholes_has_serial_prologue() {
        let b = parsec::blackscholes();
        assert_eq!(b.apps[0].phases[0].threads, 1);
        assert_eq!(b.apps[0].phases[1].threads, 8);
        // The prologue is a small share of total work.
        let frac = b.apps[0].phases[0].work_gi / b.apps[0].total_work();
        assert!(frac < 0.1);
    }
}
