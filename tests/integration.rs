//! Cross-crate integration tests: the full pipeline from workload models
//! through the board simulator to the controllers and metrics.

use yukta::board::{Actuation, Board, BoardConfig, Cluster, Placement, ThreadLoad};
use yukta::core::design::default_design;
use yukta::core::runtime::{Experiment, RunOptions};
use yukta::core::schemes::Scheme;
use yukta::workloads::{WorkloadRun, catalog};

fn quick() -> RunOptions {
    RunOptions {
        timeout_s: 700.0,
        ..Default::default()
    }
}

#[test]
fn design_pipeline_produces_deployable_controllers() {
    let d = default_design();
    // Shapes: the deployed observer-form controllers carry an
    // applied-input port: 4+3+4 = 11 inputs for HW, 3+4+3 = 10 for OS.
    assert_eq!(d.hw_ssv.controller.n_inputs(), 11);
    assert_eq!(d.hw_ssv.controller.n_outputs(), 4);
    assert_eq!(d.os_ssv.controller.n_inputs(), 10);
    assert_eq!(d.os_ssv.controller.n_outputs(), 3);
    // Deployable = internally stable even under saturation.
    assert!(d.hw_ssv.controller.is_stable().unwrap());
    assert!(d.os_ssv.controller.is_stable().unwrap());
    // The identification was meaningful.
    assert!(d.hw_fit.iter().all(|f| *f > 0.2), "hw fits {:?}", d.hw_fit);
}

#[test]
fn every_scheme_completes_blackscholes() {
    let wl = catalog::parsec::blackscholes();
    for scheme in Scheme::all() {
        let rep = Experiment::new(scheme)
            .unwrap()
            .with_options(quick())
            .run(&wl)
            .unwrap();
        assert!(
            rep.metrics.completed,
            "{} timed out at {:.0}s",
            scheme, rep.metrics.delay_seconds
        );
        assert!(rep.metrics.energy_joules > 10.0);
        assert!(!rep.trace.samples.is_empty());
    }
}

#[test]
fn ssv_respects_constraints_on_average() {
    let rep = Experiment::new(Scheme::YuktaHwSsvOsSsv)
        .unwrap()
        .with_options(quick())
        .run(&catalog::spec::gamess())
        .unwrap();
    // Constraint limits hold in sustained operation (transients may peak).
    let n = rep.trace.samples.len();
    let steady = &rep.trace.samples[n / 5..];
    let mean_p: f64 = steady.iter().map(|s| s.p_big).sum::<f64>() / steady.len() as f64;
    let mean_t: f64 = steady.iter().map(|s| s.temp).sum::<f64>() / steady.len() as f64;
    assert!(mean_p < 3.3 * 1.1, "mean big power {mean_p}");
    assert!(mean_t < 79.0 + 2.0, "mean temperature {mean_t}");
}

#[test]
fn decoupled_heuristic_oscillates_more_than_coordinated() {
    // The Figure 10 qualitative claim: decoupling produces more
    // limit-crossing power peaks.
    let wl = catalog::parsec::blackscholes();
    let coord = Experiment::new(Scheme::CoordinatedHeuristic)
        .unwrap()
        .with_options(quick())
        .run(&wl)
        .unwrap();
    let dec = Experiment::new(Scheme::DecoupledHeuristic)
        .unwrap()
        .with_options(quick())
        .run(&wl)
        .unwrap();
    let peaks_coord = coord.trace.crossings_above(|s| s.p_big, 3.6);
    let peaks_dec = dec.trace.crossings_above(|s| s.p_big, 3.6);
    assert!(
        peaks_dec >= peaks_coord,
        "decoupled {peaks_dec} vs coordinated {peaks_coord}"
    );
}

#[test]
fn workload_engine_drives_the_board_to_completion() {
    // No controllers at all: fixed operating point, run bodytrack through
    // its phase structure.
    let wl = catalog::parsec::bodytrack();
    let mut board = Board::new(BoardConfig::odroid_xu3());
    board.actuate(&Actuation {
        f_big: Some(1.4),
        f_little: Some(0.9),
        placement: Some(Placement {
            threads_big: 4,
            packing_big: 1.0,
            packing_little: 1.0,
        }),
        ..Default::default()
    });
    let mut run = WorkloadRun::new(&wl);
    let mut phase_thread_counts = std::collections::BTreeSet::new();
    for _ in 0..200_000 {
        let loads = run.loads();
        phase_thread_counts.insert(run.active_threads());
        let rep = board.step(&loads);
        run.advance(&rep.thread_progress);
        if run.is_done() {
            break;
        }
    }
    assert!(run.is_done(), "bodytrack did not complete");
    // The phase structure was exercised (8-thread track + 2-thread reduce).
    assert!(phase_thread_counts.contains(&8));
    assert!(phase_thread_counts.contains(&2));
    assert!(board.instructions(Cluster::Big) > 0.0);
}

#[test]
fn mixes_run_under_yukta() {
    let rep = Experiment::new(Scheme::YuktaHwSsvOsSsv)
        .unwrap()
        .with_options(quick())
        .run(&catalog::mixes::blst())
        .unwrap();
    assert!(rep.metrics.completed);
}

#[test]
fn idle_board_sanity() {
    // Zero threads: energy accrues only from idle power, no instructions.
    let mut board = Board::new(BoardConfig::odroid_xu3());
    let loads: Vec<ThreadLoad> = vec![ThreadLoad::idle(); 8];
    for _ in 0..500 {
        board.step(&loads);
    }
    assert_eq!(board.total_instructions(), 0.0);
    assert!(board.energy() > 0.0);
    assert!(board.state().t_hot < 45.0);
}
